"""Unit tests for the APAN mailbox-attention baseline."""

import numpy as np

from repro.autograd import no_grad
from repro.datasets import wikipedia_like
from repro.graph import iter_fixed_size
from repro.models import APAN, ModelConfig

CFG = ModelConfig(memory_dim=8, time_dim=6, embed_dim=8, edge_dim=172,
                  num_neighbors=4)


def stream():
    return wikipedia_like(num_edges=120, num_users=25, num_items=8)


class TestAPAN:
    def test_embedding_shapes(self):
        g = stream()
        model = APAN(CFG, mailbox_size=5, rng=np.random.default_rng(0))
        rt = model.new_runtime(g)
        with no_grad():
            emb = model.process_batch(g.slice(0, 10), rt, g)
        assert emb.shape == (20, 8)

    def test_messages_delivered_to_counterpart(self):
        g = stream()
        model = APAN(CFG, mailbox_size=5, rng=np.random.default_rng(0))
        rt = model.new_runtime(g)
        with no_grad():
            model.process_batch(g.slice(0, 10), rt, g)
        b = g.slice(0, 10)
        # Every endpoint received at least one message from its counterpart.
        assert (rt.mail_time[b.src] > -np.inf).any(axis=1).all()
        assert (rt.mail_time[b.dst] > -np.inf).any(axis=1).all()

    def test_mailbox_ring_keeps_most_recent(self):
        g = stream()
        model = APAN(CFG, mailbox_size=2, rng=np.random.default_rng(0))
        rt = model.new_runtime(g)
        with no_grad():
            for batch in iter_fixed_size(g, 20):
                model.process_batch(batch, rt, g)
        # No vertex holds more than mailbox_size messages; times valid.
        filled = rt.mail_time > -np.inf
        assert filled.sum(axis=1).max() <= 2

    def test_state_updates_after_propagation_lands(self):
        # Propagation is asynchronous: the first batch only fills mailboxes
        # (zero-state GRU stays at zero); state moves from the second batch.
        g = stream()
        model = APAN(CFG, mailbox_size=5, rng=np.random.default_rng(0))
        rt = model.new_runtime(g)
        with no_grad():
            model.process_batch(g.slice(0, 30), rt, g)
            assert np.allclose(rt.state, 0.0)
            model.process_batch(g.slice(30, 60), rt, g)
        touched = np.any(rt.state != 0.0, axis=1)
        assert touched.sum() > 0

    def test_infer_matches_process(self):
        g = stream()
        m1 = APAN(CFG, mailbox_size=5, rng=np.random.default_rng(0))
        m2 = APAN(CFG, mailbox_size=5, rng=np.random.default_rng(0))
        m2.load_state_dict(m1.state_dict())
        rt1, rt2 = m1.new_runtime(g), m2.new_runtime(g)
        for batch in iter_fixed_size(g, 30):
            with no_grad():
                a = m1.process_batch(batch, rt1, g).data
            b = m2.infer_batch(batch, rt2, g)
            assert np.allclose(a, b, atol=1e-12)

    def test_runtime_snapshot_restore(self):
        g = stream()
        model = APAN(CFG, mailbox_size=3, rng=np.random.default_rng(0))
        rt = model.new_runtime(g)
        with no_grad():
            model.process_batch(g.slice(0, 20), rt, g)
        snap = rt.snapshot()
        with no_grad():
            model.process_batch(g.slice(20, 40), rt, g)
        rt.restore(snap)
        assert (rt.mail_time > -np.inf).sum() == (snap["mail_time"] > -np.inf).sum()

    def test_gradients_flow(self):
        g = stream()
        model = APAN(CFG, mailbox_size=5, rng=np.random.default_rng(0))
        rt = model.new_runtime(g)
        with no_grad():
            model.process_batch(g.slice(0, 20), rt, g)  # fill mailboxes
        emb = model.process_batch(g.slice(20, 40), rt, g)
        (emb ** 2).sum().backward()
        grads = [p.grad is not None for _, p in model.named_parameters()]
        assert any(grads)
        # Query-path weights must always receive gradient.
        assert model.w_k.weight.grad is not None
        assert model.w_v.weight.grad is not None
