"""Unit tests for temporal neighbor samplers, including FIFO equivalence."""

import numpy as np

from repro.graph import FIFONeighborSampler, FullHistorySampler


def feed(sampler, edges):
    arr = np.array(edges)
    sampler.insert_edges(arr[:, 0].astype(int), arr[:, 1].astype(int),
                         arr[:, 2].astype(int), arr[:, 3])


EDGES = [(0, 1, 0, 1.0), (0, 2, 1, 2.0), (1, 2, 2, 3.0),
         (0, 3, 3, 4.0), (2, 3, 4, 5.0), (0, 1, 5, 6.0)]


class TestFullHistorySampler:
    def test_most_recent_k(self):
        s = FullHistorySampler(5)
        feed(s, EDGES)
        g = s.gather(np.array([0]), k=2)
        assert np.array_equal(g.times[0], [4.0, 6.0])
        assert np.array_equal(g.nbrs[0], [3, 1])

    def test_degree_unbounded(self):
        s = FullHistorySampler(5)
        feed(s, EDGES)
        assert s.degree(np.array([0]))[0] == 4

    def test_isolated_vertex(self):
        s = FullHistorySampler(5)
        feed(s, EDGES)
        g = s.gather(np.array([4]), k=3)
        assert not g.mask.any()

    def test_partial_history_padded(self):
        s = FullHistorySampler(5)
        feed(s, EDGES[:1])
        g = s.gather(np.array([0]), k=3)
        assert g.mask[0].sum() == 1
        assert g.nbrs[0, 0] == 1


class TestFIFOEquivalence:
    def test_fifo_matches_full_history_when_k_le_mr(self):
        """The §III hardware-sampler substitution: identical results."""
        full = FullHistorySampler(5)
        fifo = FIFONeighborSampler.create(5, mr=4)
        feed(full, EDGES)
        feed(fifo, EDGES)
        for k in (1, 2, 4):
            for v in range(5):
                gf = full.gather(np.array([v]), k=k)
                gh = fifo.gather(np.array([v]), k=k)
                assert np.array_equal(gf.mask, gh.mask), (v, k)
                assert np.array_equal(gf.nbrs[gf.mask], gh.nbrs[gh.mask]), (v, k)
                assert np.array_equal(gf.times[gf.mask], gh.times[gh.mask]), (v, k)

    def test_fifo_pads_to_k_beyond_mr(self):
        """Regression: ``gather(k > mr)`` used to return ``(B, mr)`` arrays,
        breaking shape interchangeability with FullHistorySampler."""
        fifo = FIFONeighborSampler.create(5, mr=2)
        feed(fifo, EDGES)
        g = fifo.gather(np.array([0, 4]), k=10)
        assert g.k == 10
        assert g.nbrs.shape == g.eids.shape == g.times.shape \
            == g.mask.shape == (2, 10)
        # Vertex 0 holds its mr=2 most recent; the pad is masked out.
        assert g.mask[0].tolist() == [True] * 2 + [False] * 8
        assert np.all(np.isneginf(g.times[0, 2:]))
        # Isolated vertex: fully masked row.
        assert not g.mask[1].any()

    def test_fifo_matches_full_history_when_k_gt_mr(self):
        """With histories no deeper than ``mr``, the two samplers must stay
        drop-in interchangeable even when ``k > mr`` (padded identically)."""
        full = FullHistorySampler(5)
        fifo = FIFONeighborSampler.create(5, mr=4)   # max degree in EDGES is 4
        feed(full, EDGES)
        feed(fifo, EDGES)
        for k in (5, 8):
            for v in range(5):
                gf = full.gather(np.array([v]), k=k)
                gh = fifo.gather(np.array([v]), k=k)
                assert gf.nbrs.shape == gh.nbrs.shape == (1, k), (v, k)
                assert np.array_equal(gf.mask, gh.mask), (v, k)
                assert np.array_equal(gf.nbrs[gf.mask],
                                      gh.nbrs[gh.mask]), (v, k)
                assert np.array_equal(gf.times, gh.times), (v, k)
                assert np.array_equal(gf.eids[gf.mask],
                                      gh.eids[gh.mask]), (v, k)

    def test_fifo_degree_capped(self):
        fifo = FIFONeighborSampler.create(5, mr=2)
        feed(fifo, EDGES)
        assert fifo.degree(np.array([0]))[0] == 2
