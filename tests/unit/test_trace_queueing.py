"""Unit tests for execution tracing / Gantt analysis and the queueing model."""

import numpy as np
import pytest

from repro.datasets import lastfm_like, mooc_like, wikipedia_like
from repro.hw import (FPGAAccelerator, U200_DESIGN, ZCU104_DESIGN,
                      pipeline_overlap, render_gantt, stage_utilization)
from repro.models import ModelConfig, TGNN
from repro.pipeline import (QueueStats, SimulatedFPGABackend,
                            replay_under_load)

CFG = ModelConfig(memory_dim=8, time_dim=6, embed_dim=8, edge_dim=172,
                  num_neighbors=4, simplified_attention=True,
                  lut_time_encoder=True, lut_bins=8, pruning_budget=2)


def setup(hw=None):
    g = wikipedia_like(num_edges=800, num_users=100, num_items=20)
    model = TGNN(CFG, rng=np.random.default_rng(0))
    model.calibrate(g)
    return g, model, FPGAAccelerator(model, hw or ZCU104_DESIGN)


class TestTrace:
    def test_events_collected_only_when_requested(self):
        g, model, acc = setup()
        off = acc.run_stream(g, 200, end=400)
        assert off.events == []
        on = acc.run_stream(g, 200, end=400, rt=model.new_runtime(g),
                            trace=True)
        assert len(on.events) > 0
        with pytest.raises(ValueError):
            stage_utilization(off)

    def test_events_well_formed(self):
        g, model, acc = setup()
        rep = acc.run_stream(g, 200, end=400, trace=True)
        for e in rep.events:
            assert e.end_s > e.start_s
            assert e.batch_index >= 0
        # Per-stage events never overlap (a stage is a single resource).
        by_stage = {}
        for e in rep.events:
            by_stage.setdefault(e.stage, []).append(e)
        for stage, evs in by_stage.items():
            evs.sort(key=lambda e: e.start_s)
            for a, b in zip(evs, evs[1:]):
                assert b.start_s >= a.end_s - 1e-12, stage

    def test_utilization_fractions(self):
        g, model, acc = setup()
        rep = acc.run_stream(g, 200, end=600, trace=True)
        util = stage_utilization(rep)
        assert all(0.0 <= u <= 1.0 + 1e-9 for u in util.values())
        # The bottleneck compute stages run near-continuously.
        assert max(util[s] for s in
                   ("muu_update_gate", "eu_ftm")) > 0.5

    def test_pipeline_overlap_above_serial(self):
        g, model, acc = setup()
        rep = acc.run_stream(g, 200, end=600, trace=True)
        assert pipeline_overlap(rep) > 1.5   # stages genuinely concurrent

    def test_gantt_renders(self):
        g, model, acc = setup()
        rep = acc.run_stream(g, 100, end=200, trace=True)
        chart = render_gantt(rep, width=60)
        lines = chart.splitlines()
        assert len(lines) >= 5
        assert all("|" in line for line in lines)
        body = "\n".join(lines[1:])
        assert any(ch.isdigit() for ch in body)

    def test_trace_events_match_stage_time(self):
        g, model, acc = setup()
        rep = acc.run_stream(g, 200, end=400, trace=True)
        busy = {}
        for e in rep.events:
            busy[e.stage] = busy.get(e.stage, 0.0) + e.duration_s
        for stage, total in busy.items():
            assert total == pytest.approx(rep.stage_time_s[stage], rel=1e-9)


class TestQueueing:
    def test_light_load_stable(self):
        g, model, acc = setup(U200_DESIGN)
        backend = SimulatedFPGABackend(acc, g)
        stats = replay_under_load(backend, g, window_s=3600.0, start=400)
        assert isinstance(stats, QueueStats)
        assert stats.stable
        assert stats.mean_wait_s == pytest.approx(0.0, abs=1e-6)
        assert stats.mean_response_s > 0
        assert stats.dropped_windows == 0

    def test_speedup_increases_utilization(self):
        g, model, acc = setup(ZCU104_DESIGN)
        b1 = SimulatedFPGABackend(FPGAAccelerator(model, ZCU104_DESIGN), g)
        s1 = replay_under_load(b1, g, window_s=3600.0, start=400)
        b2 = SimulatedFPGABackend(FPGAAccelerator(model, ZCU104_DESIGN), g)
        s2 = replay_under_load(b2, g, window_s=3600.0, start=400,
                               speedup=1e6)
        assert s2.utilization > s1.utilization
        assert s2.mean_response_s >= s1.mean_response_s

    def test_overload_queues_and_waits(self):
        """Windows arriving far faster than service -> waiting grows."""
        g, model, _ = setup()

        class SlowBackend:
            def process_batch(self, batch):
                return 10.0   # 10 s service per window

        stats = replay_under_load(SlowBackend(), g, window_s=3600.0,
                                  start=400, speedup=1e9)
        assert not stats.stable
        assert stats.mean_wait_s > 0
        assert stats.max_queue_depth > 1

    def test_capacity_drops(self):
        g, model, _ = setup()

        class SlowBackend:
            def process_batch(self, batch):
                return 10.0

        stats = replay_under_load(SlowBackend(), g, window_s=3600.0,
                                  start=400, speedup=1e9, queue_capacity=2)
        assert stats.dropped_windows > 0

    def test_validation(self):
        g, model, acc = setup()
        backend = SimulatedFPGABackend(acc, g)
        with pytest.raises(ValueError):
            replay_under_load(backend, g, window_s=0.0)
        with pytest.raises(ValueError):
            replay_under_load(backend, g, window_s=10.0, speedup=0.0)


class TestNewDatasets:
    def test_lastfm_featureless(self):
        g = lastfm_like(num_edges=300, num_users=60, num_items=10)
        assert g.edge_dim == 0 and g.node_dim == 0
        assert g.duration > 100 * 86_400 * 0.9   # long horizon

    def test_mooc_small_features(self):
        g = mooc_like(num_edges=300, num_users=60, num_items=10)
        assert g.edge_dim == 4
        assert g.duration < 15 * 86_400

    def test_registry_includes_new_names(self):
        from repro.datasets import load
        for name in ("lastfm", "mooc"):
            g = load(name, num_edges=100, num_users=30, num_items=10)
            assert g.num_edges == 100

    def test_model_runs_on_featureless_stream(self):
        g = lastfm_like(num_edges=200, num_users=40, num_items=10)
        cfg = ModelConfig(memory_dim=8, time_dim=6, embed_dim=8, edge_dim=0,
                          node_dim=0, num_neighbors=3,
                          simplified_attention=True)
        model = TGNN(cfg, rng=np.random.default_rng(0))
        rt = model.new_runtime(g)
        res = model.infer_batch(g.slice(0, 50), rt, g)
        assert res.embeddings.shape == (100, 8)
