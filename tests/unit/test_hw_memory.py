"""Unit tests for the DDR model and hardware configuration."""

import numpy as np
import pytest

from repro.hw import (DDRModel, HardwareConfig, U200, U200_DESIGN, ZCU104,
                      ZCU104_DESIGN)


class TestDDRModel:
    def test_alpha_monotone_saturating(self):
        d = DDRModel(peak_bw_gbs=77.0)
        bursts = [1, 8, 64, 512, 4096]
        alphas = [d.alpha(b) for b in bursts]
        assert all(a < b for a, b in zip(alphas, alphas[1:]))
        assert alphas[-1] < 1.0
        assert d.alpha(64) == pytest.approx(0.5)  # l_half definition

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            DDRModel(peak_bw_gbs=10.0).alpha(0)

    def test_transfer_time_scales_with_words(self):
        d = DDRModel(peak_bw_gbs=77.0, base_latency_s=0.0)
        t1 = d.transfer_time(1000, burst_words=256)
        t2 = d.transfer_time(2000, burst_words=256)
        assert t2 == pytest.approx(2 * t1)

    def test_zero_words_free(self):
        d = DDRModel(peak_bw_gbs=10.0)
        assert d.transfer_time(0, 64) == 0.0
        assert d.row_gather_time(0, 100) == 0.0

    def test_short_bursts_slower_per_word(self):
        d = DDRModel(peak_bw_gbs=77.0, base_latency_s=0.0)
        slow = d.transfer_time(1024, burst_words=4)
        fast = d.transfer_time(1024, burst_words=1024)
        assert slow > 2 * fast

    def test_refresh_derating(self):
        on = DDRModel(peak_bw_gbs=10.0, refresh=True)
        off = DDRModel(peak_bw_gbs=10.0, refresh=False)
        assert off.refresh_derating == 1.0
        assert 0.9 < on.refresh_derating < 1.0
        assert on.transfer_time(1e6, 256) > off.transfer_time(1e6, 256)

    def test_row_gather_amortizes_latency(self):
        d = DDRModel(peak_bw_gbs=77.0)
        serial = d.row_gather_time(64, 100, overlap=1)
        overlapped = d.row_gather_time(64, 100, overlap=16)
        assert overlapped < serial


class TestHardwareConfig:
    def test_published_designs_match_table4_configs(self):
        assert U200_DESIGN.n_cu == 2 and U200_DESIGN.sg == 8
        assert U200_DESIGN.s_fam == 16 and U200_DESIGN.s_ftm == (8, 8)
        assert U200_DESIGN.freq_mhz == 250.0
        assert ZCU104_DESIGN.n_cu == 1 and ZCU104_DESIGN.sg == 4
        assert ZCU104_DESIGN.s_fam == 8 and ZCU104_DESIGN.s_ftm == (4, 4)
        assert ZCU104_DESIGN.freq_mhz == 125.0

    def test_derived_quantities(self):
        assert U200_DESIGN.sg2 == 64
        assert U200_DESIGN.sftm2 == 64
        assert U200_DESIGN.edges_per_cu == 16
        assert U200_DESIGN.clock_s == pytest.approx(4e-9)

    def test_platform_budgets(self):
        assert U200.total_dsps == 3 * 2280
        assert ZCU104.total_urams == 96
        assert U200.fits(100, 100, 100, 100)
        assert not ZCU104.fits(10**9, 0, 0, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            HardwareConfig(platform=ZCU104, n_cu=0)
        with pytest.raises(ValueError):
            HardwareConfig(platform=ZCU104, nb=5, n_cu=2)  # nb % n_cu != 0
        with pytest.raises(ValueError):
            HardwareConfig(platform=ZCU104, commit_scan=0)

    def test_with_override(self):
        hw = ZCU104_DESIGN.with_(nb=32)
        assert hw.nb == 32 and hw.sg == ZCU104_DESIGN.sg

    def test_ddr_factory(self):
        d = U200_DESIGN.ddr(refresh=True)
        assert d.peak_bw_gbs == 77.0 and d.refresh
