"""Tier-1 guard for the benchmark harness's ``--smoke`` mode.

Runs the serving-scale bench exactly the way CI would
(``pytest benchmarks/bench_serving_scale.py --smoke``) so the bench and the
``--smoke`` conftest option cannot rot without a tier-1 failure.
"""

import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def test_serving_scale_smoke_runs_quickly(tmp_path):
    src = os.path.join(REPO_ROOT, "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_RESULTS_DIR"] = str(tmp_path)   # keep the tree clean
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-q",
         os.path.join("benchmarks", "bench_serving_scale.py"), "--smoke"],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True, timeout=60)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "3 passed" in proc.stdout
    assert "Serving scale" in proc.stdout
    assert "Placement x topology" in proc.stdout
    assert "Memory sync" in proc.stdout
