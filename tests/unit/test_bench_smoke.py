"""Tier-1 guard for the benchmark harness's ``--smoke`` mode.

Runs the serving-scale bench exactly the way CI would
(``pytest benchmarks/bench_serving_scale.py --smoke``) so the bench and the
``--smoke`` conftest option cannot rot without a tier-1 failure.

The run is also held to a **wall-clock budget**: every serving simulation
now flows through the discrete-event core, so a regression in the
scheduler's per-event overhead (a hot-path allocation, an accidental
O(n^2) queue scan) would show up here as a slow smoke run long before it
ruins the full bench.  The budget is deliberately far above the healthy
runtime (a few seconds) but far below "something is quadratic".
"""

import os
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))

# Seconds of wall clock the whole smoke harness (10 benches + interpreter
# startup) may take.  Healthy runs finish in ~8 s; the budget leaves ~5x
# headroom for slow CI machines while still catching a per-event blowup.
SMOKE_BUDGET_S = 45.0


def test_serving_scale_smoke_runs_quickly(tmp_path):
    src = os.path.join(REPO_ROOT, "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_RESULTS_DIR"] = str(tmp_path)   # keep the tree clean
    t0 = time.monotonic()
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-q",
         os.path.join("benchmarks", "bench_serving_scale.py"), "--smoke"],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True, timeout=120)
    elapsed = time.monotonic() - t0
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "10 passed" in proc.stdout
    assert "Serving scale" in proc.stdout
    assert "Placement x topology" in proc.stdout
    assert "Memory sync" in proc.stdout
    assert "Ingest x topology" in proc.stdout
    assert "Online rebalancing" in proc.stdout
    assert "Failover" in proc.stdout
    assert "Event core" in proc.stdout
    assert "Trace invariants" in proc.stdout
    assert "Measured backend" in proc.stdout
    assert "Elastic capacity" in proc.stdout
    # The perf-trajectory artifact CI diffs against its baseline.
    assert os.path.exists(os.path.join(
        str(tmp_path), "BENCH_events_per_sec.json"))
    # The failover sweep leaves its own artifact; it has no
    # ``speedup_ratio``, and check_perf_trajectory.py must tolerate it.
    assert os.path.exists(os.path.join(
        str(tmp_path), "BENCH_failover.json"))
    # The measured worker-pool ratio CI diffs against its own baseline.
    assert os.path.exists(os.path.join(
        str(tmp_path), "BENCH_measured_backend.json"))
    # The autoscale server-seconds ratio CI diffs against its baseline.
    assert os.path.exists(os.path.join(
        str(tmp_path), "BENCH_autoscale.json"))
    assert elapsed < SMOKE_BUDGET_S, (
        f"--smoke took {elapsed:.1f} s (budget {SMOKE_BUDGET_S:.0f} s): "
        f"the event loop's per-event overhead has regressed")
