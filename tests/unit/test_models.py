"""Unit tests for model components: config, messages, GRU updater,
attention mechanisms, pruning."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.models import (DT_SCALE, ModelConfig, NP_BUDGETS,
                          SimplifiedTemporalAttention,
                          VanillaTemporalAttention, build_raw_messages,
                          select_pruned, top_k_mask, variant_ladder)
from repro.models.attention import _masked_softmax_np
from repro.models.memory_updater import GRUMemoryUpdater
from repro.models.time_encoding import CosineTimeEncoder


class TestModelConfig:
    def test_defaults_are_paper_dims(self):
        cfg = ModelConfig()
        assert (cfg.memory_dim, cfg.time_dim, cfg.embed_dim) == (100, 100, 100)
        assert cfg.edge_dim == 172 and cfg.num_neighbors == 10

    def test_message_dims(self):
        cfg = ModelConfig(memory_dim=10, edge_dim=7, time_dim=5)
        assert cfg.raw_message_dim == 27
        assert cfg.message_dim == 32

    def test_pruning_requires_simplified(self):
        with pytest.raises(ValueError, match="simplified"):
            ModelConfig(pruning_budget=4)

    def test_pruning_budget_bounds(self):
        with pytest.raises(ValueError):
            ModelConfig(simplified_attention=True, pruning_budget=11)
        with pytest.raises(ValueError):
            ModelConfig(simplified_attention=True, pruning_budget=0)

    def test_effective_neighbors(self):
        base = ModelConfig(simplified_attention=True)
        assert base.effective_neighbors == 10
        assert base.with_(pruning_budget=4).effective_neighbors == 4

    def test_ladder_structure(self):
        ladder = variant_ladder(ModelConfig())
        assert [c.name for c in ladder] == [
            "baseline", "+SAT", "+LUT", "+NP(L)", "+NP(M)", "+NP(S)"]
        assert [c.pruning_budget for c in ladder[3:]] == [6, 4, 2]
        assert not ladder[0].simplified_attention
        assert all(c.lut_time_encoder for c in ladder[2:])
        assert NP_BUDGETS == {"L": 6, "M": 4, "S": 2}

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            ModelConfig(memory_dim=0)
        with pytest.raises(ValueError):
            ModelConfig(edge_dim=-1)


class TestMessages:
    def test_directed_pair(self):
        ms = np.array([[1.0, 1.0]])
        md = np.array([[2.0, 2.0]])
        ef = np.array([[9.0]])
        a, b = build_raw_messages(ms, md, ef)
        assert np.allclose(a, [[1, 1, 2, 2, 9]])
        assert np.allclose(b, [[2, 2, 1, 1, 9]])

    def test_zero_dim_edge_features(self):
        a, b = build_raw_messages(np.ones((3, 2)), np.zeros((3, 2)),
                                  np.zeros((3, 0)))
        assert a.shape == (3, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            build_raw_messages(np.ones((2, 2)), np.ones((3, 2)),
                               np.zeros((2, 0)))
        with pytest.raises(ValueError):
            build_raw_messages(np.ones((2, 2)), np.ones((2, 2)),
                               np.zeros((3, 1)))


class TestGRUMemoryUpdater:
    def _updater(self):
        cfg = ModelConfig(memory_dim=6, time_dim=4, embed_dim=6, edge_dim=3,
                          num_neighbors=2)
        enc = CosineTimeEncoder(4, rng=np.random.default_rng(0))
        return cfg, GRUMemoryUpdater(cfg, enc, rng=np.random.default_rng(1))

    def test_tensor_and_numpy_paths_agree(self):
        cfg, upd = self._updater()
        rng = np.random.default_rng(2)
        raw = rng.normal(size=(5, cfg.raw_message_dim))
        dt = rng.uniform(0, 100, 5)
        mem = rng.normal(size=(5, cfg.memory_dim))
        with no_grad():
            a = upd(raw, dt, mem).data
        b = upd.forward_numpy(raw, dt, mem)
        assert np.allclose(a, b, atol=1e-12)

    def test_output_bounded_by_gru_dynamics(self):
        cfg, upd = self._updater()
        out = upd.forward_numpy(np.zeros((3, cfg.raw_message_dim)),
                                np.zeros(3), np.zeros((3, cfg.memory_dim)))
        assert np.all(np.abs(out) <= 1.0)  # convex combo of tanh and 0


def _attn_inputs(cfg, n=4, seed=0):
    rng = np.random.default_rng(seed)
    k = cfg.num_neighbors
    q = Tensor(rng.normal(size=(n, cfg.memory_dim)))
    nbr = Tensor(rng.normal(size=(n, k, cfg.memory_dim)))
    ef = rng.normal(size=(n, k, cfg.edge_dim))
    te = Tensor(rng.normal(size=(n, k, cfg.time_dim)))
    tz = Tensor(rng.normal(size=(n, cfg.time_dim)))
    mask = np.ones((n, k), dtype=bool)
    mask[0, -1] = False
    dt = rng.uniform(0, 5, size=(n, k))
    return q, nbr, ef, te, tz, mask, dt


class TestVanillaAttention:
    def test_shapes_and_mask(self):
        cfg = ModelConfig(memory_dim=6, time_dim=4, embed_dim=5, edge_dim=3,
                          num_neighbors=4)
        attn = VanillaTemporalAttention(cfg, rng=np.random.default_rng(1))
        q, nbr, ef, te, tz, mask, dt = _attn_inputs(cfg)
        out = attn(q, nbr, ef, te, tz, mask)
        assert out.hidden.shape == (4, 5)
        assert out.logits.shape == (4, 4)
        assert np.array_equal(out.selected, mask)

    def test_numpy_path_agrees(self):
        cfg = ModelConfig(memory_dim=6, time_dim=4, embed_dim=5, edge_dim=3,
                          num_neighbors=4)
        attn = VanillaTemporalAttention(cfg, rng=np.random.default_rng(1))
        q, nbr, ef, te, tz, mask, dt = _attn_inputs(cfg)
        with no_grad():
            out = attn(q, nbr, ef, te, tz, mask)
        h, logits = attn.forward_numpy(q.data, nbr.data, ef, te.data,
                                       tz.data, mask)
        assert np.allclose(out.hidden.data, h, atol=1e-12)
        assert np.allclose(out.logits.data, logits, atol=1e-12)

    def test_isolated_node_zero_hidden(self):
        cfg = ModelConfig(memory_dim=6, time_dim=4, embed_dim=5, edge_dim=3,
                          num_neighbors=4)
        attn = VanillaTemporalAttention(cfg, rng=np.random.default_rng(1))
        q, nbr, ef, te, tz, mask, dt = _attn_inputs(cfg)
        mask[:] = False
        with no_grad():
            out = attn(q, nbr, ef, te, tz, mask)
        assert np.allclose(out.hidden.data, 0.0)


class TestSimplifiedAttention:
    def _cfg(self, budget=None):
        return ModelConfig(memory_dim=6, time_dim=4, embed_dim=5, edge_dim=3,
                           num_neighbors=4, simplified_attention=True,
                           pruning_budget=budget)

    def test_logits_depend_only_on_dt(self):
        cfg = self._cfg()
        attn = SimplifiedTemporalAttention(cfg, rng=np.random.default_rng(2))
        q, nbr, ef, te, tz, mask, dt = _attn_inputs(cfg)
        out1 = attn(q, nbr, ef, te, tz, mask, dt_scaled=dt)
        q2, nbr2, ef2, te2, _, _, _ = _attn_inputs(cfg, seed=99)
        out2 = attn(q2, nbr2, ef2, te2, tz, mask, dt_scaled=dt)
        assert np.allclose(out1.logits.data, out2.logits.data)

    def test_requires_dt(self):
        cfg = self._cfg()
        attn = SimplifiedTemporalAttention(cfg, rng=np.random.default_rng(2))
        q, nbr, ef, te, tz, mask, _ = _attn_inputs(cfg)
        with pytest.raises(ValueError):
            attn(q, nbr, ef, te, tz, mask)

    def test_pruning_restricts_selected(self):
        cfg = self._cfg(budget=2)
        attn = SimplifiedTemporalAttention(cfg, rng=np.random.default_rng(2))
        q, nbr, ef, te, tz, mask, dt = _attn_inputs(cfg)
        out = attn(q, nbr, ef, te, tz, mask, dt_scaled=dt)
        assert np.all(out.selected.sum(axis=1) <= 2)
        assert np.all(out.selected <= mask)

    def test_pruned_numpy_path_agrees_with_tensor_path(self):
        cfg = self._cfg(budget=2)
        attn = SimplifiedTemporalAttention(cfg, rng=np.random.default_rng(2))
        q, nbr, ef, te, tz, mask, dt = _attn_inputs(cfg)
        with no_grad():
            out = attn(q, nbr, ef, te, tz, mask, dt_scaled=dt)
        logits = attn.logits_numpy(dt)
        idx, selm = select_pruned(logits, mask, 2)
        rows = np.arange(4)[:, None]
        h = attn.forward_numpy(nbr.data[rows, idx], ef[rows, idx],
                               te.data[rows, idx], logits[rows, idx], selm)
        assert np.allclose(out.hidden.data, h, atol=1e-12)


class TestPruning:
    def test_top_k_selects_highest(self):
        logits = np.array([[1.0, 5.0, 3.0, 2.0]])
        mask = np.ones((1, 4), dtype=bool)
        keep = top_k_mask(logits, mask, 2)
        assert np.array_equal(keep, [[False, True, True, False]])

    def test_respects_validity(self):
        logits = np.array([[9.0, 5.0, 3.0]])
        mask = np.array([[False, True, True]])
        keep = top_k_mask(logits, mask, 2)
        assert np.array_equal(keep, [[False, True, True]])

    def test_budget_ge_k_identity(self):
        logits = np.zeros((2, 3))
        mask = np.array([[True, False, True], [True, True, True]])
        assert np.array_equal(top_k_mask(logits, mask, 5), mask)

    def test_row_with_fewer_valid_than_budget(self):
        logits = np.array([[1.0, 2.0, 3.0, 4.0]])
        mask = np.array([[True, False, False, False]])
        keep = top_k_mask(logits, mask, 3)
        assert keep.sum() == 1

    def test_deterministic_tiebreak_low_index(self):
        logits = np.zeros((1, 4))
        mask = np.ones((1, 4), dtype=bool)
        keep = top_k_mask(logits, mask, 2)
        assert np.array_equal(keep, [[True, True, False, False]])

    def test_select_pruned_preserves_time_order(self):
        logits = np.array([[5.0, 1.0, 4.0, 3.0]])
        mask = np.ones((1, 4), dtype=bool)
        idx, selm = select_pruned(logits, mask, 2)
        assert np.array_equal(idx[0], [0, 2])  # ascending slot order
        assert selm.all()

    def test_select_pruned_pads_short_rows(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        mask = np.array([[True, False, False]])
        idx, selm = select_pruned(logits, mask, 2)
        assert selm[0, 0] and not selm[0, 1]

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            top_k_mask(np.zeros((1, 3)), np.ones((1, 3), dtype=bool), 0)
        with pytest.raises(ValueError):
            top_k_mask(np.zeros((1, 3)), np.ones((2, 3), dtype=bool), 1)


class TestMaskedSoftmaxNp:
    def test_matches_dense_softmax_on_full_mask(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(3, 5))
        mask = np.ones((3, 5), dtype=bool)
        s = _masked_softmax_np(x, mask)
        e = np.exp(x - x.max(axis=1, keepdims=True))
        assert np.allclose(s, e / e.sum(axis=1, keepdims=True))

    def test_all_masked_rows_zero(self):
        s = _masked_softmax_np(np.ones((2, 3)), np.zeros((2, 3), dtype=bool))
        assert np.allclose(s, 0.0)
