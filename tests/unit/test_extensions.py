"""Unit tests for the extension modules: RNN updater, checkpoint I/O,
design-space exploration, multi-die floorplanning, warm-start, reporting."""

import os

import numpy as np
import pytest

from repro.autograd import no_grad
from repro.datasets import wikipedia_like
from repro.graph import iter_fixed_size
from repro.hw import (SweepSpec, U200, U200_DESIGN, ZCU104, ZCU104_DESIGN,
                      best_design, explore, pareto_frontier, plan_floorplan)
from repro.models import (ModelConfig, RNNMemoryUpdater, TGNN, load_model,
                          load_runtime, save_model, save_runtime)
from repro.profiling import Convention, count_ops
from repro.reporting import render_table, save_result, section
from repro.training import warm_start_student

SMALL = ModelConfig(memory_dim=8, time_dim=6, embed_dim=8, edge_dim=172,
                    num_neighbors=4)


def stream():
    return wikipedia_like(num_edges=200, num_users=40, num_items=10)


class TestRNNUpdater:
    def test_config_selects_updater(self):
        model = TGNN(SMALL.with_(memory_updater="rnn"),
                     rng=np.random.default_rng(0))
        assert isinstance(model.memory_updater, RNNMemoryUpdater)
        with pytest.raises(ValueError):
            ModelConfig(memory_updater="lstm")

    def test_rnn_paths_agree(self):
        cfg = SMALL.with_(memory_updater="rnn", simplified_attention=True,
                          lut_time_encoder=True, lut_bins=8,
                          pruning_budget=2)
        g = stream()
        model = TGNN(cfg, rng=np.random.default_rng(0))
        model.calibrate(g)
        rt_a = model.new_runtime(g)
        with no_grad():
            ref = [model.process_batch(b, rt_a, g).embeddings.data
                   for b in iter_fixed_size(g, 32)]
        model.prepare_inference()
        rt_b = model.new_runtime(g)
        got = [model.infer_batch(b, rt_b, g).embeddings.data
               for b in iter_fixed_size(g, 32)]
        for a, b in zip(ref, got):
            assert np.allclose(a, b, atol=1e-9)

    def test_rnn_cheaper_than_gru(self):
        gru = count_ops(ModelConfig())
        rnn = count_ops(ModelConfig(memory_updater="rnn"))
        assert rnn.gru_macs < gru.gru_macs
        full_gru = count_ops(ModelConfig(), Convention.FULL)
        full_rnn = count_ops(ModelConfig(memory_updater="rnn"),
                             Convention.FULL)
        assert full_rnn.gru_macs < full_gru.gru_macs / 2

    def test_rnn_output_bounded(self):
        model = TGNN(SMALL.with_(memory_updater="rnn"),
                     rng=np.random.default_rng(0))
        out = model.memory_updater.forward_numpy(
            np.ones((3, SMALL.raw_message_dim)), np.zeros(3),
            np.zeros((3, SMALL.memory_dim)))
        assert np.all(np.abs(out) <= 1.0)  # tanh range

    def test_rnn_trains(self):
        g = stream()
        model = TGNN(SMALL.with_(memory_updater="rnn"),
                     rng=np.random.default_rng(0))
        rt = model.new_runtime(g)
        model.process_batch(g.slice(0, 40), rt, g)
        res = model.process_batch(g.slice(40, 80), rt, g)
        (res.embeddings ** 2).sum().backward()
        assert model.memory_updater.w_ih.grad is not None


class TestCheckpoint:
    def test_model_roundtrip(self, tmp_path):
        cfg = SMALL.with_(simplified_attention=True, lut_time_encoder=True,
                          lut_bins=8, pruning_budget=2)
        g = stream()
        model = TGNN(cfg, rng=np.random.default_rng(0))
        model.calibrate(g)
        path = os.path.join(tmp_path, "model.npz")
        save_model(model, path)
        loaded = load_model(path)
        assert loaded.cfg == cfg
        # Identical inference behaviour, including LUT calibration.
        rt1, rt2 = model.new_runtime(g), loaded.new_runtime(g)
        model.prepare_inference()
        for b in iter_fixed_size(g, 32):
            a = model.infer_batch(b, rt1, g).embeddings.data
            c = loaded.infer_batch(b, rt2, g).embeddings.data
            assert np.array_equal(a, c)

    def test_runtime_roundtrip(self, tmp_path):
        g = stream()
        model = TGNN(SMALL, rng=np.random.default_rng(0))
        rt = model.new_runtime(g)
        with no_grad():
            for b in iter_fixed_size(g, 50, end=150):
                model.process_batch(b, rt, g)
        path = os.path.join(tmp_path, "rt.npz")
        save_runtime(rt, path)
        restored = load_runtime(model, g.num_nodes, path)
        assert np.allclose(restored.state.memory, rt.state.memory)
        assert np.array_equal(restored.sampler.table._times,
                              rt.sampler.table._times)
        # Resumed inference matches continued inference.
        with no_grad():
            a = model.process_batch(g.slice(150, 200), rt, g)
            b = model.process_batch(g.slice(150, 200), restored, g)
        assert np.allclose(a.embeddings.data, b.embeddings.data)


class TestDSE:
    SPEC = SweepSpec(n_cu=(1, 2), sg=(4, 8), s_fam=(8,), s_ftm=((4, 4),),
                     nb=(16,), freq_mhz=(250.0,))

    def test_explore_filters_infeasible(self):
        cfg = ModelConfig(simplified_attention=True)
        pts = explore(cfg, ZCU104, self.SPEC)
        assert pts, "some designs must fit"
        assert all(p.resources.fits for p in pts)

    def test_pareto_frontier_properties(self):
        cfg = ModelConfig(simplified_attention=True)
        pts = explore(cfg, U200, self.SPEC)
        frontier = pareto_frontier(pts)
        dsps = [p.dsp for p in frontier]
        thpts = [p.throughput_eps for p in frontier]
        assert dsps == sorted(dsps)
        assert thpts == sorted(thpts)
        # No point dominates a frontier member.
        for f in frontier:
            for p in pts:
                assert not (p.dsp < f.dsp
                            and p.throughput_eps > f.throughput_eps)

    def test_best_design_objectives(self):
        cfg = ModelConfig(simplified_attention=True)
        pts = explore(cfg, U200, self.SPEC)
        bt = best_design(pts, "throughput")
        bl = best_design(pts, "latency")
        assert bt.throughput_eps == max(p.throughput_eps for p in pts)
        assert bl.latency_s == min(p.latency_s for p in pts)
        with pytest.raises(ValueError):
            best_design(pts, "power")
        with pytest.raises(ValueError):
            best_design([], "throughput")


class TestFloorplan:
    def test_single_die_no_crossings(self):
        fp = plan_floorplan(ModelConfig(simplified_attention=True),
                            ZCU104_DESIGN)
        assert fp.crossings == 0
        assert set(fp.assignment.values()) == {0}
        assert fp.feasible

    def test_u200_layout_matches_paper(self):
        fp = plan_floorplan(ModelConfig(simplified_attention=True),
                            U200_DESIGN)
        # Shared front end on the middle die; CUs spread over outer dies.
        assert fp.assignment["data_loader"] == 1
        assert fp.assignment["cu0"] != 1 and fp.assignment["cu1"] != 1
        assert fp.assignment["cu0"] != fp.assignment["cu1"]
        assert fp.crossings == 4        # 2 crossings per off-die CU
        assert fp.feasible

    def test_crossing_for(self):
        fp = plan_floorplan(ModelConfig(simplified_attention=True),
                            U200_DESIGN)
        assert fp.crossing_for("data_loader", "cu0")
        assert not fp.crossing_for("data_loader", "updater")


class TestWarmStart:
    def test_copies_shared_parameters(self):
        teacher = TGNN(SMALL, rng=np.random.default_rng(0))
        student = TGNN(SMALL.with_(simplified_attention=True),
                       rng=np.random.default_rng(1))
        copied = warm_start_student(teacher, student)
        assert "memory_updater.gru.weight_ih" in copied
        assert "out_transform.weight" in copied
        assert np.array_equal(student.out_transform.weight.data,
                              teacher.out_transform.weight.data)
        # Attention-specific student parameters are untouched.
        assert not any(name.startswith("attention.attn_bias")
                       for name in copied)


class TestAPANEmbedNodes:
    def test_query_does_not_mutate_state(self):
        from repro.models import APAN
        g = stream()
        apan = APAN(SMALL, mailbox_size=4, rng=np.random.default_rng(0))
        rt = apan.new_runtime(g)
        with no_grad():
            apan.process_batch(g.slice(0, 50), rt, g)
        snap = rt.snapshot()
        with no_grad():
            emb = apan.embed_nodes(np.array([0, 1, 2]),
                                   np.array([1e4, 1e4, 1e4]), rt, g)
        assert emb.shape == (3, SMALL.embed_dim)
        for key, value in snap.items():
            assert np.array_equal(getattr(rt, key), value), key


class TestReporting:
    def test_render_table_alignment(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}]
        text = render_table(rows, precision=2)
        lines = text.strip().splitlines()
        assert len(lines) == 4
        assert "0.12" in text

    def test_render_empty(self):
        assert render_table([]) == "(no rows)"

    def test_save_result(self, tmp_path):
        path = save_result("unit_test", "hello", results_dir=str(tmp_path))
        assert os.path.exists(path)
        with open(path) as fh:
            assert fh.read().strip() == "hello"

    def test_section(self):
        s = section("Title")
        assert "Title" in s and "=" in s
