"""Unit tests for the temporal graph container and batching."""

import numpy as np
import pytest

from repro.graph import (TemporalGraph, iter_fixed_size,
                         iter_time_window_spans, iter_time_windows)


def small_graph(n=10):
    t = np.arange(n, dtype=float) * 10.0
    ef = np.arange(n * 2, dtype=float).reshape(n, 2)
    return TemporalGraph(src=np.zeros(n, dtype=int),
                         dst=np.arange(1, n + 1), t=t, edge_feat=ef)


class TestConstruction:
    def test_basic_properties(self):
        g = small_graph()
        assert g.num_edges == 10
        assert g.num_nodes == 11
        assert g.edge_dim == 2
        assert g.node_dim == 0
        assert g.duration == 90.0

    def test_rejects_decreasing_timestamps(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            TemporalGraph([0, 0], [1, 2], [5.0, 1.0])

    def test_rejects_negative_ids(self):
        with pytest.raises(ValueError):
            TemporalGraph([-1], [0], [0.0])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            TemporalGraph([0, 1], [1], [0.0, 1.0])

    def test_rejects_bad_feature_rows(self):
        with pytest.raises(ValueError):
            TemporalGraph([0], [1], [0.0], edge_feat=np.zeros((3, 2)))
        with pytest.raises(ValueError):
            TemporalGraph([0], [1], [0.0], node_feat=np.zeros((1, 4)))

    def test_num_nodes_override(self):
        g = TemporalGraph([0], [1], [0.0], num_nodes=100)
        assert g.num_nodes == 100
        with pytest.raises(ValueError):
            TemporalGraph([0], [5], [0.0], num_nodes=2)

    def test_empty_feature_defaults(self):
        g = TemporalGraph([0], [1], [0.0])
        assert g.edge_feat.shape == (1, 0)
        assert g.node_feat.shape == (2, 0)


class TestSlicing:
    def test_slice_is_view(self):
        g = small_graph()
        b = g.slice(2, 5)
        assert len(b) == 3
        assert b.src.base is g.src or b.src is g.src[2:5]
        assert np.array_equal(b.eid, [2, 3, 4])

    def test_nodes_interleaved(self):
        g = small_graph()
        b = g.slice(0, 2)
        assert np.array_equal(b.nodes, [0, 1, 0, 2])

    def test_split_boundaries(self):
        g = small_graph()
        _, (tr, va, te) = g.split(0.7, 0.15)
        assert (tr, va, te) == (7, 8, 10)
        with pytest.raises(ValueError):
            g.split(0.9, 0.2)


class TestFixedSizeBatching:
    def test_covers_all_edges_once(self):
        g = small_graph()
        batches = list(iter_fixed_size(g, 3))
        assert [len(b) for b in batches] == [3, 3, 3, 1]
        eids = np.concatenate([b.eid for b in batches])
        assert np.array_equal(eids, np.arange(10))

    def test_start_end_window(self):
        g = small_graph()
        batches = list(iter_fixed_size(g, 4, start=2, end=8))
        assert [len(b) for b in batches] == [4, 2]
        assert batches[0].eid[0] == 2

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            list(iter_fixed_size(small_graph(), 0))


class TestTimeWindowBatching:
    def test_windows_partition_stream(self):
        g = small_graph()  # edges at t = 0, 10, ..., 90
        batches = list(iter_time_windows(g, window=25.0))
        eids = np.concatenate([b.eid for b in batches])
        assert np.array_equal(eids, np.arange(10))
        # window [0, 25) -> t 0,10,20; [25,50) -> 30,40; etc.
        assert [len(b) for b in batches] == [3, 2, 3, 2]

    def test_empty_windows_skipped(self):
        t = np.array([0.0, 1.0, 1000.0])
        g = TemporalGraph([0, 0, 0], [1, 2, 3], t)
        batches = list(iter_time_windows(g, window=10.0))
        assert len(batches) == 2
        assert len(batches[0]) == 2 and len(batches[1]) == 1

    def test_every_batch_nonempty(self):
        g = small_graph()
        for b in iter_time_windows(g, window=7.0):
            assert len(b) > 0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            list(iter_time_windows(small_graph(), 0.0))


class TestTimeWindowSpans:
    """Window-boundary reporting, gap skipping, and the round-off guard."""

    def test_spans_contain_their_edges(self):
        g = small_graph()  # edges at t = 0, 10, ..., 90
        for w_start, w_end, b in iter_time_window_spans(g, window=25.0):
            assert w_end == w_start + 25.0
            assert np.all(b.t >= w_start) and np.all(b.t < w_end)

    def test_multi_window_gap_keeps_alignment(self):
        # A gap spanning many empty windows: the next span must stay on the
        # original 10 s grid (100 lands in [100, 110), not in a re-aligned
        # window), and no empty batch is ever yielded.
        t = np.array([0.0, 1.0, 100.0, 101.0, 502.0])
        g = TemporalGraph([0] * 5, [1, 2, 3, 4, 1], t)
        spans = list(iter_time_window_spans(g, window=10.0))
        assert [(s, e) for s, e, _ in spans] == \
            [(0.0, 10.0), (100.0, 110.0), (500.0, 510.0)]
        assert all(len(b) > 0 for _, _, b in spans)
        assert sum(len(b) for _, _, b in spans) == g.num_edges

    def test_float_round_off_guard_realigns(self):
        # After the first window the grid sits at 0.1; the skip to t = 0.7
        # computes floor(0.6 / 0.1) = 5 in float64 and lands the window at
        # [0.6, 0.7), which excludes t = 0.7 (0.6 + 0.1 rounds just below
        # 0.7).  The guard must re-anchor the window at the edge instead of
        # yielding an empty batch.
        g = TemporalGraph([0, 0], [1, 2], np.array([0.0, 0.7]))
        spans = list(iter_time_window_spans(g, window=0.1))
        assert len(spans) == 2
        assert spans[1][0] == 0.7           # re-anchored, not 0.6
        assert all(len(b) == 1 for _, _, b in spans)
        for w_start, w_end, b in spans:
            assert np.all(b.t >= w_start) and np.all(b.t < w_end)

    def test_windows_view_matches_spans(self):
        g = small_graph()
        from_windows = [b.eid.tolist() for b in iter_time_windows(g, 7.0)]
        from_spans = [b.eid.tolist()
                      for _, _, b in iter_time_window_spans(g, 7.0)]
        assert from_windows == from_spans
