"""Unit tests for the cosine and LUT time encoders."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.models import CosineTimeEncoder, LUTTimeEncoder


class TestCosineEncoder:
    def test_output_range_and_shape(self):
        enc = CosineTimeEncoder(8)
        out = enc(np.array([0.0, 10.0, 1e6])).data
        assert out.shape == (3, 8)
        assert np.all(np.abs(out) <= 1.0 + 1e-12)

    def test_batched_2d_input(self):
        enc = CosineTimeEncoder(4)
        out = enc(np.zeros((3, 5)))
        assert out.shape == (3, 5, 4)

    def test_numpy_path_matches_tensor_path(self):
        enc = CosineTimeEncoder(6)
        dt = np.random.default_rng(0).uniform(0, 1e5, size=(4, 3))
        assert np.allclose(enc(dt).data, enc.encode_numpy(dt))

    def test_multi_scale_frequencies(self):
        enc = CosineTimeEncoder(10)
        # omega spans many decades so both tiny and huge dt are resolved.
        w = np.abs(enc.omega.data)
        assert w.max() / w.min() > 1e6

    def test_gradients_to_omega_phase(self):
        enc = CosineTimeEncoder(4)
        out = enc(np.array([1.0, 2.0]))
        (out ** 2).sum().backward()
        assert enc.omega.grad is not None
        assert enc.phase.grad is not None


class TestLUTEncoder:
    def _calibrated(self, bins=8):
        rng = np.random.default_rng(0)
        enc = LUTTimeEncoder(time_dim=6, n_bins=bins, rng=rng)
        deltas = rng.pareto(1.2, size=2000) * 3600.0
        enc.calibrate(deltas, reference=CosineTimeEncoder(6))
        return enc, deltas

    def test_uncalibrated_single_bin(self):
        enc = LUTTimeEncoder(4, n_bins=8)
        idx = enc.bin_index(np.array([0.0, 1.0, 1e9]))
        assert np.all(idx == 0)

    def test_calibration_spreads_bins(self):
        enc, deltas = self._calibrated()
        idx = enc.bin_index(deltas)
        assert len(np.unique(idx)) >= 6  # nearly all bins used
        counts = np.bincount(idx, minlength=8)
        assert counts.max() < 3 * len(deltas) / 8

    def test_bin_index_monotone(self):
        enc, _ = self._calibrated()
        dts = np.sort(np.random.default_rng(1).uniform(0, 1e6, 100))
        idx = enc.bin_index(dts)
        assert np.all(np.diff(idx) >= 0)

    def test_out_of_range_clipped(self):
        enc, _ = self._calibrated()
        idx = enc.bin_index(np.array([-5.0, 1e30]))
        assert idx[0] == 0 and idx[1] == enc.n_bins - 1

    def test_warm_start_close_to_reference(self):
        rng = np.random.default_rng(0)
        ref = CosineTimeEncoder(6)
        enc = LUTTimeEncoder(6, n_bins=32, rng=rng)
        deltas = rng.uniform(0, 1e4, size=4000)
        enc.calibrate(deltas, reference=ref)
        approx = enc.encode_numpy(deltas)
        exact = ref.encode_numpy(deltas)
        # Piecewise-constant approximation of a smooth encoder: bounded error.
        assert np.mean(np.abs(approx - exact)) < 0.5

    def test_forward_gradient_scatters_to_entries(self):
        enc, _ = self._calibrated()
        dt = np.array([0.0, 0.0, 1e9])
        out = enc(dt)
        out.sum().backward()
        g = enc.table.grad
        assert g is not None
        assert np.allclose(g[enc.bin_index(np.array([0.0]))[0]], 2.0)
        assert np.allclose(g.sum(), 18.0)  # 3 lookups x 6 dims x grad 1

    def test_premultiply_equivalence(self):
        """The §III-C reversal: lookup of W @ table == W @ lookup."""
        enc, deltas = self._calibrated()
        rng = np.random.default_rng(2)
        w = rng.normal(size=(5, 6))
        table = enc.premultiply(w)
        dt = deltas[:50]
        direct = enc.encode_numpy(dt) @ w.T
        via_lut = table[enc.bin_index(dt)]
        assert np.allclose(direct, via_lut, atol=1e-12)

    def test_premultiply_validates_shape(self):
        enc, _ = self._calibrated()
        with pytest.raises(ValueError):
            enc.premultiply(np.zeros((5, 7)))

    def test_storage_words(self):
        enc, _ = self._calibrated()
        assert enc.storage_words() == 8 * 6
        assert enc.storage_words([10, 20]) == 8 * 30

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            LUTTimeEncoder(4, n_bins=0)
