"""Unit tests for the sharded multi-stream serving subsystem."""

import numpy as np
import pytest

from repro.datasets import wikipedia_like
from repro.graph import NeighborTable, iter_fixed_size, merge_batches
from repro.models import ModelConfig, TGNN
from repro.perf import CPU_32T
from repro.pipeline import ModeledGPPBackend, replay_under_load
from repro.profiling import count_ops
from repro.serving import (DEFAULT_REGISTRY, BackendRegistry, CoalescedJob,
                           CrossShardMailbox, DynamicBatcher, ServingEngine,
                           ShardRouter, StreamArrival, make_stream_arrivals,
                           simulate_queue)

CFG = ModelConfig(memory_dim=8, time_dim=6, embed_dim=8, edge_dim=172,
                  num_neighbors=4, simplified_attention=True,
                  lut_time_encoder=True, lut_bins=8, pruning_budget=2)


def setup():
    g = wikipedia_like(num_edges=600, num_users=80, num_items=20)
    model = TGNN(CFG, rng=np.random.default_rng(0))
    model.calibrate(g)
    return g, model


def modeled_backend(model, graph):
    return ModeledGPPBackend(CPU_32T, count_ops(CFG), model, graph,
                             functional=False)


# --------------------------------------------------------------------------- #
class TestSimulator:
    def service(self, s):
        return lambda payload: s

    def test_utilization_counts_trailing_service(self):
        """Regression: busy time past the last arrival used to be divided
        away, reporting utilization > 1 for a stable trace."""
        # Old accounting: busy 20 / last-arrival span 1 -> "2000%".
        res = simulate_queue([(0.0, None), (1.0, None)], self.service(10.0))
        assert res.busy_s == 20.0
        assert res.makespan_s == pytest.approx(20.0)   # runs to last finish
        assert res.utilization == pytest.approx(1.0)
        # Idle gap between jobs: trailing service still counted.
        res = simulate_queue([(0.0, None), (100.0, None)], self.service(10.0))
        assert res.makespan_s == pytest.approx(110.0)
        assert res.utilization == pytest.approx(20.0 / 110.0)

    def test_single_job_no_denominator_blowup(self):
        """Regression: a single-arrival trace used to divide by 1e-12."""
        res = simulate_queue([(5.0, None)], self.service(2.0))
        assert res.utilization == 1.0
        assert res.offered_load == 0.0     # one job is not a process
        assert res.stable
        assert res.mean_wait_s == 0.0
        assert res.mean_response_s == pytest.approx(2.0)

    def test_capacity_bounds_waiting_not_in_service(self):
        """Regression: the in-service job counted against the buffer, so a
        capacity-2 queue started dropping at backlog 1."""
        arrivals = [(float(i), i) for i in range(4)]
        res = simulate_queue(arrivals, self.service(100.0), queue_capacity=2)
        # Job 0 is in service; jobs 1 and 2 occupy the two buffer slots;
        # only job 3 is rejected.
        assert res.dropped_indices == (3,)
        assert res.max_queue_depth == 2

    def test_capacity_zero_is_bufferless_not_deaf(self):
        """Regression: capacity 0 dropped every arrival, even ones an idle
        server could start immediately — a loss system still serves jobs
        that need no waiting."""
        res = simulate_queue([(0.0, None), (100.0, None)],
                             self.service(10.0), queue_capacity=0)
        assert res.jobs == 2 and res.dropped == 0   # server idle both times
        busy = simulate_queue([(0.0, None), (1.0, None), (200.0, None)],
                              self.service(10.0), queue_capacity=0)
        assert busy.dropped_indices == (1,)         # only the one that waits

    def test_multi_server_shares_load(self):
        res = simulate_queue([(0.0, None)] * 3, self.service(10.0),
                             num_servers=2)
        waits = sorted(j.wait_s for j in res.served)
        assert waits == [0.0, 0.0, 10.0]
        assert res.makespan_s == pytest.approx(20.0)
        assert res.utilization == pytest.approx(30.0 / (2 * 20.0))
        # Adding a server cannot increase the makespan.
        res1 = simulate_queue([(0.0, None)] * 3, self.service(10.0))
        assert res.makespan_s <= res1.makespan_s

    def test_fifo_begin_times_monotone(self):
        rng = np.random.default_rng(1)
        arrivals = [(float(t), None)
                    for t in np.sort(rng.uniform(0, 50, size=40))]
        res = simulate_queue(arrivals,
                             lambda _: float(rng.uniform(0.1, 3.0)),
                             num_servers=3)
        begins = [j.t_begin for j in res.served]
        assert begins == sorted(begins)
        assert 0.0 < res.utilization <= 1.0

    def test_offered_load_flags_overload(self):
        arrivals = [(i * 1e-6, None) for i in range(20)]
        res = simulate_queue(arrivals, self.service(1.0))
        assert res.offered_load > 1.0
        assert not res.stable
        assert res.utilization <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_queue([(0.0, None)], self.service(1.0), num_servers=0)
        with pytest.raises(ValueError):
            simulate_queue([(1.0, None), (0.0, None)], self.service(1.0))
        with pytest.raises(ValueError):
            simulate_queue([(0.0, None)], self.service(1.0),
                           queue_capacity=-1)


# --------------------------------------------------------------------------- #
def window_arrivals(graph, window_s=3600.0, num_streams=1, speedup=1.0):
    return make_stream_arrivals(graph, window_s, num_streams=num_streams,
                                speedup=speedup)


class TestDynamicBatcher:
    def test_passthrough_default(self):
        g, _ = setup()
        arrivals = window_arrivals(g)
        jobs = DynamicBatcher().coalesce(arrivals)
        assert len(jobs) == len(arrivals)
        for job, a in zip(jobs, arrivals):
            assert job.t_release == a.t
            assert job.n_edges == len(a.batch)
            assert job.batching_delay_s == 0.0

    def test_size_only_batching_coalesces(self):
        """Regression: ``DynamicBatcher(max_edges=N)`` used to inherit a
        0-second deadline that flushed before the buffer ever reached N."""
        g, _ = setup()
        arrivals = window_arrivals(g)
        jobs = DynamicBatcher(max_edges=40).coalesce(arrivals)
        assert len(jobs) < len(arrivals)
        assert any(len(j.sources) > 1 for j in jobs)

    def test_size_trigger_respects_cap(self):
        """Regression: the buffer used to admit an arrival *before* checking
        the size trigger, so released jobs routinely exceeded ``max_edges``
        — overflowing the device capacity the cap models."""
        g, _ = setup()
        arrivals = window_arrivals(g)
        jobs = DynamicBatcher(max_edges=40,
                              max_delay_s=float("inf")).coalesce(arrivals)
        assert len(jobs) < len(arrivals)
        assert sum(j.n_edges for j in jobs) == \
            sum(len(a.batch) for a in arrivals)
        for j in jobs:
            # The cap binds unless a single oversized arrival had nowhere
            # else to go.
            assert j.n_edges <= 40 or len(j.sources) == 1
            # A flush is an event at some arrival instant.
            assert j.t_release >= j.sources[-1].t

    def test_deadline_trigger_flushes_at_deadline(self):
        b = DynamicBatcher(max_delay_s=5.0)
        mk = lambda t: StreamArrival(t=t, stream=0, batch=_tiny_batch(t))
        jobs = b.coalesce([mk(0.0), mk(2.0), mk(9.0), mk(11.0)])
        # 0.0 and 2.0 coalesce and release at the 5.0 deadline; 9.0 and 11.0
        # coalesce (11 < 9 + 5) and release at the tail deadline 14.0.
        assert [j.t_release for j in jobs] == [5.0, 14.0]
        assert [len(j.sources) for j in jobs] == [2, 2]

    def test_merged_batch_is_chronological(self):
        b = DynamicBatcher(max_delay_s=100.0)
        a1 = StreamArrival(t=10.0, stream=0, batch=_tiny_batch(7.0))
        a2 = StreamArrival(t=10.5, stream=1, batch=_tiny_batch(3.0))
        jobs = b.coalesce([a1, a2])
        assert len(jobs) == 1
        assert np.all(np.diff(jobs[0].batch.t) >= 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicBatcher(max_edges=0)
        with pytest.raises(ValueError):
            DynamicBatcher(max_delay_s=-1.0)
        with pytest.raises(ValueError):
            DynamicBatcher().coalesce(
                [StreamArrival(1.0, 0, _tiny_batch(1.0)),
                 StreamArrival(0.0, 0, _tiny_batch(0.0))])


def _tiny_batch(t):
    g = wikipedia_like(num_edges=4, num_users=4, num_items=2)
    b = g.slice(0, 2)
    return type(b)(src=b.src, dst=b.dst, t=np.full(2, t), eid=b.eid,
                   edge_feat=b.edge_feat)


class TestBatcherInvariants:
    """The three contracts every coalescing configuration must keep."""

    CONFIGS = [
        dict(),                                       # passthrough
        dict(max_edges=16),                           # size-only
        dict(max_edges=16, max_delay_s=2000.0),       # size + deadline
        dict(max_delay_s=500.0),                      # deadline-only
        dict(max_edges=3),                            # cap < window size
        dict(max_edges=10_000),                       # cap never reached
    ]

    def _arrivals(self):
        g, _ = setup()
        return window_arrivals(g, window_s=3600.0, num_streams=2,
                               speedup=4.0)

    @pytest.mark.parametrize("cfg", CONFIGS)
    def test_every_edge_exactly_once(self, cfg):
        """Coalescing must neither drop nor duplicate stream edges."""
        arrivals = self._arrivals()
        jobs = DynamicBatcher(**cfg).coalesce(arrivals)
        got = np.sort(np.concatenate([j.batch.eid for j in jobs]))
        want = np.sort(np.concatenate([a.batch.eid for a in arrivals]))
        assert np.array_equal(got, want)
        assert sum(len(j.sources) for j in jobs) == len(arrivals)

    @pytest.mark.parametrize("cfg", [c for c in CONFIGS
                                     if c.get("max_edges")])
    def test_jobs_never_exceed_max_edges(self, cfg):
        """A released job fits the device unless one arrival alone cannot."""
        jobs = DynamicBatcher(**cfg).coalesce(self._arrivals())
        for j in jobs:
            assert j.n_edges <= cfg["max_edges"] or len(j.sources) == 1

    @pytest.mark.parametrize("cfg", [c for c in CONFIGS
                                     if c.get("max_delay_s") is not None])
    def test_batching_delay_never_exceeds_deadline(self, cfg):
        """The oldest buffered arrival never waits past the deadline."""
        jobs = DynamicBatcher(**cfg).coalesce(self._arrivals())
        for j in jobs:
            assert j.batching_delay_s <= cfg["max_delay_s"] + 1e-9
            # And each constituent waited at most as long as the oldest.
            for a in j.sources:
                assert j.t_release - a.t <= cfg["max_delay_s"] + 1e-9

    def test_passthrough_has_zero_delay(self):
        jobs = DynamicBatcher().coalesce(self._arrivals())
        assert all(j.batching_delay_s == 0.0 for j in jobs)


# --------------------------------------------------------------------------- #
class TestShardRouter:
    def test_partition_covers_all_shards(self):
        r = ShardRouter(4, 1000)
        assert r.assignment.shape == (1000,)
        assert set(np.unique(r.assignment)) == {0, 1, 2, 3}
        counts = np.bincount(r.assignment, minlength=4)
        assert counts.min() > 100          # roughly even spread

    def test_split_routes_every_edge_to_both_owners(self):
        g, _ = setup()
        r = ShardRouter(4, g.num_nodes)
        batch = g.slice(0, 200)
        mailbox = CrossShardMailbox(4)
        subs = r.split(batch, mailbox)
        seen = {}
        for sb in subs:
            assert np.all(np.diff(sb.batch.t) >= 0)   # stream order kept
            assert sb.mail_from.shape == (sb.mail_edges,)
            for eid in sb.batch.eid:
                seen.setdefault(int(eid), []).append(sb.shard)
        s_src = r.shard_of(batch.src)
        s_dst = r.shard_of(batch.dst)
        for i, eid in enumerate(batch.eid):
            owners = {int(s_src[i]), int(s_dst[i])}
            assert sorted(seen[int(eid)]) == sorted(owners)
        cross = int((s_src != s_dst).sum())
        assert mailbox.total_edges == cross
        assert sum(sb.mail_edges for sb in subs) == cross
        assert sum(sb.local_edges for sb in subs) == len(batch)

    def test_single_shard_is_identity(self):
        g, _ = setup()
        r = ShardRouter(1, g.num_nodes)
        batch = g.slice(0, 100)
        subs = r.split(batch)
        assert len(subs) == 1
        assert subs[0].mail_edges == 0
        assert np.array_equal(subs[0].batch.eid, batch.eid)

    def test_owned_rows_match_unsharded_neighbor_table(self):
        """The mailbox guarantee: a shard sees every edge incident to its
        owned vertices in stream order, so those neighbor-table rows are
        identical to the unsharded table's."""
        g, _ = setup()
        mr = 4
        r = ShardRouter(3, g.num_nodes)
        global_table = NeighborTable(g.num_nodes, mr)
        shard_tables = [NeighborTable(g.num_nodes, mr) for _ in range(3)]
        for batch in iter_fixed_size(g, 50):
            global_table.insert_edges(batch.src, batch.dst, batch.eid,
                                      batch.t)
            for sb in r.split(batch):
                shard_tables[sb.shard].insert_edges(
                    sb.batch.src, sb.batch.dst, sb.batch.eid, sb.batch.t)
        vertices = np.arange(g.num_nodes)
        g_all = global_table.gather(vertices)
        for shard in range(3):
            owned = np.flatnonzero(r.assignment == shard)
            g_shard = shard_tables[shard].gather(owned)
            assert np.array_equal(g_shard.mask, g_all.mask[owned])
            assert np.array_equal(g_shard.nbrs[g_shard.mask],
                                  g_all.nbrs[owned][g_all.mask[owned]])
            assert np.array_equal(g_shard.times[g_shard.mask],
                                  g_all.times[owned][g_all.mask[owned]])

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardRouter(0, 10)


# --------------------------------------------------------------------------- #
class TestBackendRegistry:
    def test_builtin_names(self):
        for name in ("software", "u200", "zcu104", "cpu-32t", "gpu"):
            assert name in DEFAULT_REGISTRY

    def test_create_builds_fresh_instances(self):
        g, model = setup()
        b1 = DEFAULT_REGISTRY.create("cpu-32t", model, g, functional=False)
        b2 = DEFAULT_REGISTRY.create("cpu-32t", model, g, functional=False)
        assert b1 is not b2
        assert b1.process_batch(g.slice(0, 50)) > 0

    def test_unknown_name_lists_available(self):
        g, model = setup()
        with pytest.raises(KeyError, match="software"):
            DEFAULT_REGISTRY.create("tpu", model, g)

    def test_custom_registry_and_duplicate_rejection(self):
        reg = BackendRegistry()

        @reg.register("const")
        def _const(model, graph, **_):
            class B:
                name = "const"

                def process_batch(self, batch):
                    return 1e-3
            return B()

        assert reg.available() == ["const"]
        assert reg.create("const", None, None).process_batch(None) == 1e-3
        with pytest.raises(ValueError):
            reg.register("const", _const)


# --------------------------------------------------------------------------- #
class TestServingEngine:
    def test_single_shard_matches_replay_under_load(self):
        """Acceptance: shards=1 reproduces the single-server path exactly."""
        g, model = setup()
        qs = replay_under_load(modeled_backend(model, g), g,
                               window_s=3600.0, start=300, speedup=40.0)
        engine = ServingEngine([modeled_backend(model, g)], g.num_nodes)
        rep = engine.run(g, window_s=3600.0, start=300, speedup=40.0)
        s0 = rep.shard_stats[0]
        assert rep.windows == qs.windows
        assert s0.utilization == pytest.approx(qs.utilization)
        assert s0.mean_wait_s == pytest.approx(qs.mean_wait_s)
        assert s0.p95_response_s == pytest.approx(qs.p95_response_s)
        assert rep.p95_response_s == pytest.approx(qs.p95_response_s)
        assert rep.mean_response_s == pytest.approx(qs.mean_response_s)
        assert rep.cross_shard_edges == 0

    def test_four_shards_four_streams_end_to_end(self):
        """Acceptance: 4 shards x 4 streams at speedup=2.0 completes."""
        g, model = setup()
        engine = ServingEngine([modeled_backend(model, g)
                                for _ in range(4)], g.num_nodes)
        rep = engine.run(g, window_s=3600.0, speedup=2.0, num_streams=4)
        fresh = ServingEngine([modeled_backend(model, g)
                               for _ in range(4)], g.num_nodes)
        base = fresh.run(g, window_s=3600.0, speedup=2.0, num_streams=1)
        assert rep.num_shards == 4 and rep.num_streams == 4
        assert len(rep.shard_stats) == 4
        assert rep.windows == 4 * base.windows
        assert rep.dropped_windows == 0
        assert rep.p95_response_s > 0
        assert all(s.jobs > 0 for s in rep.shard_stats)
        assert rep.cross_shard_edges > 0
        assert rep.processed_edges == \
            rep.ingested_edges + rep.cross_shard_edges
        # Every stat the issue demands is populated per shard.
        for s in rep.shard_stats:
            assert 0.0 <= s.utilization <= 1.0
            assert s.p95_response_s <= s.p99_response_s or \
                s.p99_response_s == pytest.approx(s.p95_response_s, rel=1e-6)
            assert s.dropped_jobs == 0

    def test_from_registry_heterogeneous_shards(self):
        g, model = setup()
        engine = ServingEngine.from_registry(
            ["cpu-32t", "gpu"], model, g,
            backend_kwargs={"functional": False})
        rep = engine.run(g, window_s=3600.0, speedup=2.0)
        names = [s.backend for s in rep.shard_stats]
        assert len(names) == 2 and names[0] != names[1]

    def test_deadline_batching_reduces_jobs(self):
        g, model = setup()
        passthrough = ServingEngine([modeled_backend(model, g)],
                                    g.num_nodes)
        coalescing = ServingEngine([modeled_backend(model, g)], g.num_nodes,
                                   batcher=DynamicBatcher(max_delay_s=1e4))
        r1 = passthrough.run(g, window_s=3600.0)
        r2 = coalescing.run(g, window_s=3600.0)
        assert r2.shard_stats[0].jobs < r1.shard_stats[0].jobs
        assert r2.windows == r1.windows    # no arrivals lost, just batched

    def test_queue_capacity_drops_windows(self):
        g, model = setup()

        class SlowBackend:
            name = "slow"

            def process_batch(self, batch):
                return 100.0

        engine = ServingEngine([SlowBackend()], g.num_nodes)
        rep = engine.run(g, window_s=3600.0, speedup=1e9, queue_capacity=2)
        assert rep.dropped_windows > 0
        assert not rep.stable

    def test_dropped_jobs_not_counted_as_processed(self):
        """Regression: traffic used to be recorded at split time, so edges
        rejected by a full queue inflated processed/cross-shard/throughput
        numbers."""
        g, model = setup()

        class SlowBackend:
            name = "slow"

            def process_batch(self, batch):
                return 100.0

        engine = ServingEngine([SlowBackend(), SlowBackend()], g.num_nodes)
        rep = engine.run(g, window_s=3600.0, speedup=1e9, queue_capacity=1)
        assert rep.dropped_windows > 0
        # Only the handful of actually-served jobs may count as processed.
        assert rep.processed_edges < rep.ingested_edges
        assert rep.processed_edges == sum(s.edges for s in rep.shard_stats)
        assert rep.cross_shard_edges == \
            sum(s.mail_in_edges for s in rep.shard_stats)
        assert 0 <= rep.served_edges <= rep.processed_edges
        assert rep.throughput_eps * rep.makespan_s == \
            pytest.approx(rep.served_edges)

    def test_cross_die_mail_penalty_increases_busy(self):
        g, model = setup()
        free = ServingEngine([modeled_backend(model, g) for _ in range(4)],
                             g.num_nodes)
        taxed = ServingEngine([modeled_backend(model, g) for _ in range(4)],
                              g.num_nodes, die_of=[0, 1, 0, 1],
                              mail_hop_s=1e-4)
        r0 = free.run(g, window_s=3600.0)
        r1 = taxed.run(g, window_s=3600.0)
        assert r1.cross_die_mail_edges > 0
        assert r0.cross_die_mail_edges == 0
        assert sum(s.busy_s for s in r1.shard_stats) > \
            sum(s.busy_s for s in r0.shard_stats)

    def test_validation(self):
        g, model = setup()
        with pytest.raises(ValueError):
            ServingEngine([], g.num_nodes)
        with pytest.raises(ValueError):
            ServingEngine.from_registry("cpu-32t", model, g, num_shards=0)
        with pytest.raises(ValueError):
            ServingEngine([modeled_backend(model, g)], g.num_nodes,
                          die_of=[0, 1])
        engine = ServingEngine([modeled_backend(model, g)], g.num_nodes)
        with pytest.raises(ValueError):
            engine.run(g, window_s=0.0)
        with pytest.raises(ValueError):
            engine.run(g, window_s=10.0, num_streams=0)


# --------------------------------------------------------------------------- #
class TestPartialWindowAccounting:
    """Regression: when one shard's bounded queue dropped a sub-job, the
    other shards' served sub-jobs of the same window still inflated
    processed_edges, shard traffic, mailbox counts, and the replication
    factor even though the window was reported dropped."""

    def partial_drop_run(self):
        from repro.graph import TemporalGraph
        from repro.pipeline import LinearCostBackend
        from repro.serving import Placement
        # 10 single-edge windows 0 -> 1; vertex 0 on shard 0, vertex 1 on
        # shard 1, so every window forks into a local sub-job (shard 0)
        # and a mailed sub-job (shard 1).
        n = 10
        g = TemporalGraph(src=np.zeros(n, dtype=np.int64),
                          dst=np.ones(n, dtype=np.int64),
                          t=10.0 * np.arange(n), num_nodes=2)
        placement = Placement(assignment=np.array([0, 1]), num_shards=2)
        # Shard 0 needs 100 s per edge: its capacity-1 queue accepts the
        # first two windows and rejects the rest; shard 1 is fast and
        # serves its sub-job of *every* window.
        engine = ServingEngine(
            [LinearCostBackend(per_edge_s=100.0),
             LinearCostBackend(per_edge_s=1e-3)],
            g.num_nodes, placement=placement)
        return engine.run(g, window_s=5.0, queue_capacity=1)

    def test_dropped_window_subjobs_excluded_from_traffic(self):
        rep = self.partial_drop_run()
        assert rep.windows == 2 and rep.dropped_windows == 8
        # Shard 1 *served* all ten sub-jobs (queueing really happened)...
        assert rep.shard_stats[1].jobs == 10
        assert rep.shard_stats[0].dropped_jobs == 8
        # ...but only the two completed windows may count as traffic.
        assert rep.shard_stats[0].edges == 2      # local sub-jobs
        assert rep.shard_stats[1].edges == 2      # mailed sub-jobs
        assert rep.processed_edges == 4
        assert rep.cross_shard_edges == 2
        assert rep.served_edges == 2
        assert rep.replication_factor == pytest.approx(2.0)
        assert rep.processed_edges == sum(s.edges for s in rep.shard_stats)
        assert rep.cross_shard_edges == \
            sum(s.mail_in_edges for s in rep.shard_stats)


class TestArrivalTieBreak:
    """Regression: same-instant arrivals from different streams relied on
    sort stability; the key is now explicitly ``(t, stream)``."""

    def tie_graph(self):
        from repro.graph import TemporalGraph
        # Windows [1, 11) and [11, 21) close at t=9 and t=14; with two
        # streams (phase shift 5) stream 0's second window and stream 1's
        # first window both arrive at normalized t=5.
        return TemporalGraph(src=np.array([0, 1, 0]),
                             dst=np.array([1, 0, 1]),
                             t=np.array([1.0, 9.0, 14.0]), num_nodes=2)

    def test_same_instant_arrivals_order_by_stream(self):
        arrivals = make_stream_arrivals(self.tie_graph(), 10.0,
                                        num_streams=2)
        keys = [(a.t, a.stream) for a in arrivals]
        assert keys == [(0.0, 0), (5.0, 0), (5.0, 1), (10.0, 1)]
        assert keys == sorted(keys)

    def test_tied_workload_report_is_byte_stable(self):
        from repro.pipeline import LinearCostBackend
        g = self.tie_graph()
        reports = []
        for _ in range(3):
            engine = ServingEngine(
                [LinearCostBackend(per_edge_s=1e-2) for _ in range(2)],
                g.num_nodes)
            reports.append(engine.run(g, window_s=10.0,
                                      num_streams=2).to_json())
        assert reports[0] == reports[1] == reports[2]


class TestWarmStateRerun:
    """``ServingEngine.run`` documents that a second run continues from
    warm backend state; pin that contract."""

    class RampBackend:
        """Service time grows with every call — observable warm state."""

        name = "ramp"

        def __init__(self):
            self.calls = 0

        def process_batch(self, batch):
            self.calls += 1
            return 1e-3 * self.calls

    def test_second_run_continues_from_warm_state(self):
        g = wikipedia_like(num_edges=300, num_users=40, num_items=10)
        engine = ServingEngine([self.RampBackend()], g.num_nodes)
        first = engine.run(g, window_s=3600.0)
        second = engine.run(g, window_s=3600.0)
        fresh = ServingEngine([self.RampBackend()],
                              g.num_nodes).run(g, window_s=3600.0)
        # Deterministic baseline: a fresh engine reproduces the first run.
        assert fresh.to_json() == first.to_json()
        # The warm rerun kept the backend's state: services are longer.
        assert second.to_json() != first.to_json()
        assert second.shard_stats[0].busy_s > first.shard_stats[0].busy_s

    def test_from_registry_rebuilds_cleanly(self):
        g, model = setup()
        runs = []
        for _ in range(2):
            engine = ServingEngine.from_registry(
                "cpu-32t", model, g, num_shards=2,
                backend_kwargs={"functional": False})
            runs.append(engine.run(g, window_s=3600.0, speedup=2.0,
                                   num_streams=2).to_json())
        assert runs[0] == runs[1]


class TestPoolServersReport:
    def test_pool_replica_count_is_top_level(self):
        from repro.pipeline import LinearCostBackend
        g = wikipedia_like(num_edges=300, num_users=40, num_items=10)
        rep = ServingEngine([LinearCostBackend()], g.num_nodes,
                            topology="pool", pool_servers=4).run(
            g, window_s=3600.0, num_streams=2)
        assert rep.pool_servers == 4
        assert rep.pool_servers == rep.shard_stats[0].servers
        assert rep.to_dict()["pool_servers"] == 4
        assert b'"pool_servers": 4' in rep.to_json().encode()

    def test_sharded_reports_one_server_per_shard(self):
        g, model = setup()
        rep = ServingEngine([modeled_backend(model, g)
                             for _ in range(2)], g.num_nodes).run(
            g, window_s=3600.0)
        assert rep.pool_servers == 1


# --------------------------------------------------------------------------- #
class TestReplayWrapperRegressions:
    def test_single_window_stream_sane_utilization(self):
        """Regression: one-window streams divided busy time by 1e-12."""
        g = wikipedia_like(num_edges=30, num_users=10, num_items=4)

        class ConstBackend:
            def process_batch(self, batch):
                return 0.5

        stats = replay_under_load(ConstBackend(), g, window_s=1e9)
        assert stats.windows == 1
        assert stats.utilization == 1.0
        assert stats.stable

    def test_overload_utilization_bounded(self):
        """Regression: utilization could exceed 1 when service spilled past
        the last arrival; offered load now carries the overload signal."""
        g, model = setup()

        class SlowBackend:
            def process_batch(self, batch):
                return 10.0

        stats = replay_under_load(SlowBackend(), g, window_s=3600.0,
                                  speedup=1e9)
        assert stats.utilization <= 1.0
        assert stats.offered_load > 1.0
        assert not stats.stable
