"""Unit tests for the FPGA accelerator simulator."""

import numpy as np
import pytest

from repro.datasets import wikipedia_like
from repro.graph import iter_fixed_size
from repro.hw import (FPGAAccelerator, U200_DESIGN, ZCU104_DESIGN,
                      estimate_resources)
from repro.models import ModelConfig, TGNN
from repro.profiling.paper_reference import TABLE4

CFG = ModelConfig(memory_dim=8, time_dim=6, embed_dim=8, edge_dim=172,
                  num_neighbors=4, simplified_attention=True,
                  lut_time_encoder=True, lut_bins=8, pruning_budget=2)


def build(hw=None):
    g = wikipedia_like(num_edges=600, num_users=80, num_items=20)
    model = TGNN(CFG, rng=np.random.default_rng(0))
    model.calibrate(g)
    return g, model, FPGAAccelerator(model, hw or ZCU104_DESIGN)


class TestFunctional:
    def test_rejects_vanilla_attention(self):
        g = wikipedia_like(num_edges=50, num_users=20, num_items=5)
        vanilla = TGNN(CFG.with_(simplified_attention=False,
                                 lut_time_encoder=False, pruning_budget=None),
                       rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="simplified"):
            FPGAAccelerator(vanilla, ZCU104_DESIGN)

    def test_embeddings_bit_identical_to_software(self):
        g, model, acc = build()
        report = acc.run_stream(g, batch_size=100, end=400,
                                collect_embeddings=True)
        # Software reference with identical state evolution.
        ref_model = TGNN(CFG, rng=np.random.default_rng(0))
        ref_model.calibrate(g)
        ref_model.load_state_dict(model.state_dict())
        ref_model.prepare_inference()
        rt = ref_model.new_runtime(g)
        ref = []
        for batch in iter_fixed_size(g, 100, end=400):
            for lo in range(0, len(batch), acc.hw.nb):
                from repro.hw.accelerator import _slice_batch
                sub = _slice_batch(batch, lo, min(lo + acc.hw.nb, len(batch)))
                ref.append(ref_model.infer_batch(sub, rt, g).embeddings.data)
        assert len(ref) == len(report.embeddings)
        for a, b in zip(ref, report.embeddings):
            assert np.array_equal(a, b)

    def test_updater_counts_duplicates(self):
        g, model, acc = build()
        report = acc.run_stream(g, batch_size=200, end=600)
        assert report.updater_invalidated > 0      # repeat vertices exist
        assert report.updater_committed + report.updater_invalidated \
            == 2 * report.n_edges


class TestTiming:
    def test_report_consistency(self):
        g, model, acc = build()
        report = acc.run_stream(g, batch_size=100, end=400)
        assert report.n_edges == 400
        assert report.total_s > 0
        assert len(report.batch_latencies_s) == 4
        assert report.throughput_eps == pytest.approx(400 / report.total_s)
        assert report.mean_latency_s > 0

    def test_throughput_improves_with_batch_size(self):
        g, model, acc = build()
        small = acc.run_stream(g, batch_size=20, end=200)
        acc2 = FPGAAccelerator(model, ZCU104_DESIGN)
        large = acc2.run_stream(g, batch_size=200, end=200)
        assert large.throughput_eps >= small.throughput_eps * 0.95

    def test_u200_faster_than_zcu104(self):
        g, model, _ = build()
        u = FPGAAccelerator(model, U200_DESIGN).run_stream(g, 200, end=600)
        z = FPGAAccelerator(model, ZCU104_DESIGN).run_stream(g, 200, end=600)
        assert u.throughput_eps > 2 * z.throughput_eps
        assert u.mean_latency_s < z.mean_latency_s

    def test_prefetch_ablation_slower(self):
        g, model, _ = build()
        on = FPGAAccelerator(model, ZCU104_DESIGN)
        off = FPGAAccelerator(model, ZCU104_DESIGN.with_(prefetch=False))
        t_on = on.run_stream(g, 200, end=600).total_s
        t_off = off.run_stream(g, 200, end=600).total_s
        assert t_off >= t_on

    def test_pruning_budget_speeds_up(self):
        g = wikipedia_like(num_edges=400, num_users=60, num_items=15)
        results = {}
        for budget in (4, 2):
            cfg = CFG.with_(pruning_budget=budget)
            m = TGNN(cfg, rng=np.random.default_rng(0))
            m.calibrate(g)
            rep = FPGAAccelerator(m, ZCU104_DESIGN).run_stream(g, 200, end=400)
            results[budget] = rep.total_s
        assert results[2] <= results[4]

    def test_latency_single_batch(self):
        g, model, acc = build()
        lat = acc.latency_single_batch(g, batch_size=100, warmup_edges=200)
        assert lat > 0

    def test_stage_times_cover_pipeline(self):
        g, model, acc = build()
        report = acc.run_stream(g, batch_size=100, end=300)
        for key in ("load_edges", "load_vertex", "prefetch", "store",
                    "muu_update_gate", "eu_fam", "eu_ftm"):
            assert report.stage_time_s.get(key, 0.0) > 0.0, key


class TestResources:
    def test_u200_estimate_near_table4(self):
        est = estimate_resources(ModelConfig(simplified_attention=True,
                                             lut_time_encoder=True,
                                             pruning_budget=4), U200_DESIGN)
        ref = TABLE4["u200"]
        assert est.dsp == pytest.approx(ref["dsp"], rel=0.25)
        assert est.lut == pytest.approx(ref["lut"], rel=0.25)
        assert est.bram == pytest.approx(ref["bram"], rel=0.25)
        assert est.uram == pytest.approx(ref["uram"], rel=0.25)
        assert est.fits

    def test_zcu104_estimate_near_table4(self):
        est = estimate_resources(ModelConfig(simplified_attention=True,
                                             lut_time_encoder=True,
                                             pruning_budget=4), ZCU104_DESIGN)
        ref = TABLE4["zcu104"]
        assert est.uram == 0                      # matches published design
        assert est.dsp == pytest.approx(ref["dsp"], rel=0.5)
        assert est.lut == pytest.approx(ref["lut"], rel=0.25)
        assert est.bram == pytest.approx(ref["bram"], rel=0.35)
        assert est.fits

    def test_dsp_scales_with_parallelism(self):
        cfg = ModelConfig(simplified_attention=True)
        small = estimate_resources(cfg, ZCU104_DESIGN)
        big = estimate_resources(cfg, ZCU104_DESIGN.with_(sg=8))
        assert big.dsp > small.dsp

    def test_utilization_fractions(self):
        cfg = ModelConfig(simplified_attention=True, lut_time_encoder=True)
        est = estimate_resources(cfg, U200_DESIGN)
        util = est.utilization(U200_DESIGN)
        assert 0 < util["dsp"] < 1 and 0 < util["lut"] < 1
