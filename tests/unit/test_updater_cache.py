"""Unit tests for the Updater's rotating-pointer commit cache (§IV-B)."""

import numpy as np
import pytest

from repro.hw import UpdaterCache


class TestFunctionalDedup:
    def test_unique_ids_all_commit(self):
        u = UpdaterCache(lines=8, scan_width=3)
        r = u.process(np.array([1, 2, 3, 4]))
        assert r.committed == 4
        assert r.invalidated == 0
        assert np.array_equal(r.survivors, [0, 1, 2, 3])

    def test_duplicate_within_window_invalidated(self):
        u = UpdaterCache(lines=8, scan_width=3)
        r = u.process(np.array([5, 5, 5]))
        assert r.committed == 1
        assert r.invalidated == 2
        assert np.array_equal(r.survivors, [2])   # last write wins

    def test_duplicate_outside_window_both_commit(self):
        u = UpdaterCache(lines=2, scan_width=3)
        ids = np.array([7, 1, 2, 3, 7])  # second 7 arrives 4 slots later
        r = u.process(ids)
        assert r.invalidated == 0
        assert r.committed == 5

    def test_survivors_match_last_write_oracle(self):
        rng = np.random.default_rng(0)
        ids = rng.integers(0, 6, size=40)
        u = UpdaterCache(lines=64, scan_width=3)
        r = u.process(ids)
        # Window >= sequence length -> exactly the last occurrences survive.
        expected = sorted({v: i for i, v in enumerate(ids)}.values())
        assert np.array_equal(r.survivors, expected)

    def test_empty_batch(self):
        u = UpdaterCache(lines=4, scan_width=2)
        r = u.process(np.array([], dtype=int))
        assert r.cycles == 0 and r.committed == 0


class TestTiming:
    def test_cycles_lower_bound_is_arrivals(self):
        u = UpdaterCache(lines=64, scan_width=3)
        r = u.process(np.arange(50))
        assert r.cycles >= 50

    def test_wider_scan_never_slower(self):
        ids = np.random.default_rng(1).integers(0, 20, size=200)
        slow = UpdaterCache(lines=16, scan_width=1).process(ids)
        fast = UpdaterCache(lines=16, scan_width=4).process(ids)
        assert fast.cycles <= slow.cycles

    def test_small_cache_with_slow_scan_stalls(self):
        ids = np.arange(100)
        r = UpdaterCache(lines=2, scan_width=1).process(ids)
        # scan 1/cycle vs arrivals 1/cycle with 2 lines: tight but no loss;
        # stalls bounded, cycles bounded by 2x arrivals + drain.
        assert r.cycles <= 2 * len(ids) + 2
        assert r.committed == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            UpdaterCache(lines=0, scan_width=1)
        with pytest.raises(ValueError):
            UpdaterCache(lines=4, scan_width=0)
