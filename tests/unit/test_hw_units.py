"""Unit tests for MUU / EU timing models and functional kernels."""

import numpy as np
import pytest

from repro.autograd import no_grad
from repro.hw import (EU_STAGES, MUU_STAGES, EmbeddingUnit,
                      MemoryUpdateUnit, ZCU104_DESIGN)
from repro.models import ModelConfig, TGNN
from repro.models.attention import _masked_softmax_np

CFG = ModelConfig(memory_dim=8, time_dim=6, embed_dim=8, edge_dim=12,
                  num_neighbors=4, simplified_attention=True)


class TestMUUTiming:
    def test_stage_names(self):
        muu = MemoryUpdateUnit(CFG, ZCU104_DESIGN)
        assert set(muu.stage_cycles(16)) == set(MUU_STAGES)

    def test_cycles_scale_with_nodes(self):
        muu = MemoryUpdateUnit(CFG, ZCU104_DESIGN)
        a = muu.stage_cycles(16)
        b = muu.stage_cycles(32)
        assert b["muu_update_gate"] == 2 * a["muu_update_gate"]

    def test_bigger_array_fewer_cycles(self):
        small = MemoryUpdateUnit(CFG, ZCU104_DESIGN)
        big = MemoryUpdateUnit(CFG, ZCU104_DESIGN.with_(sg=8))
        assert big.stage_cycles(32)["muu_update_gate"] \
            < small.stage_cycles(32)["muu_update_gate"]

    def test_lut_removes_time_slice_and_encoder(self):
        lut_cfg = CFG.with_(lut_time_encoder=True)
        plain = MemoryUpdateUnit(CFG, ZCU104_DESIGN).stage_cycles(32)
        lut = MemoryUpdateUnit(lut_cfg, ZCU104_DESIGN).stage_cycles(32)
        assert lut["muu_update_gate"] < plain["muu_update_gate"]

    def test_functional_matches_model(self):
        model = TGNN(CFG, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        raw = rng.normal(size=(5, CFG.raw_message_dim))
        dt = rng.uniform(0, 10, 5)
        mem = rng.normal(size=(5, CFG.memory_dim))
        a = MemoryUpdateUnit.functional(model, raw, dt, mem)
        b = model.memory_updater.forward_numpy(raw, dt, mem)
        assert np.allclose(a, b)


class TestEUTiming:
    def test_stage_names(self):
        eu = EmbeddingUnit(CFG, ZCU104_DESIGN)
        assert set(eu.stage_cycles(16)) == set(EU_STAGES)

    def test_pruning_reduces_fam_not_am(self):
        pruned = CFG.with_(pruning_budget=2)
        full = EmbeddingUnit(CFG, ZCU104_DESIGN).stage_cycles(32)
        np_ = EmbeddingUnit(pruned, ZCU104_DESIGN).stage_cycles(32)
        assert np_["eu_fam"] < full["eu_fam"]
        # Logits still computed over all k sampled neighbors.
        assert np_["eu_attention"] == full["eu_attention"]

    def test_fam_parallelism(self):
        narrow = EmbeddingUnit(CFG, ZCU104_DESIGN.with_(s_fam=4))
        wide = EmbeddingUnit(CFG, ZCU104_DESIGN.with_(s_fam=16))
        assert wide.stage_cycles(32)["eu_fam"] < narrow.stage_cycles(32)["eu_fam"]

    def test_aggregate_then_transform_equals_per_neighbor_values(self):
        """Linearity reordering (FAM before value weights) is exact."""
        model = TGNN(CFG, rng=np.random.default_rng(2))
        rng = np.random.default_rng(3)
        n, k = 6, CFG.num_neighbors
        nbr = rng.normal(size=(n, k, CFG.memory_dim))
        ef = rng.normal(size=(n, k, CFG.edge_dim))
        te = rng.normal(size=(n, k, CFG.time_dim))
        logits = rng.normal(size=(n, k))
        mask = rng.random((n, k)) < 0.8
        mask[:, 0] = True
        self_feat = rng.normal(size=(n, CFG.memory_dim))
        ef_m = np.where(mask[:, :, None], ef, 0.0)

        via_hw = EmbeddingUnit.functional(model, nbr, ef_m, te, logits,
                                          mask, self_feat)
        # Per-neighbor values reference (the software formulation).
        hidden = model.attention.forward_numpy(nbr, ef_m, te, logits, mask)
        out = np.concatenate([hidden, self_feat], axis=1)
        ref = np.maximum(out @ model.out_transform.weight.data.T
                         + model.out_transform.bias.data, 0.0)
        assert np.allclose(via_hw, ref, atol=1e-10)
