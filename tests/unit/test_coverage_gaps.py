"""Targeted tests for code paths added during the extension phase.

* premultiplied-LUT updater kernels equal their dense counterparts exactly
  (the §III-C identity, per updater variant);
* attention modules receive correct gradients end-to-end (finite-difference
  checked at module level);
* trace collection composes with time-window batching;
* multi-layer model composes with the simplified attention + LUT encoder;
* perf model codifies the budget-independence of the hardware critical path
  (the Fig. 5 deviation documented in EXPERIMENTS.md E6).
"""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, no_grad
from repro.datasets import wikipedia_like
from repro.graph import iter_time_windows
from repro.hw import FPGAAccelerator, U200_DESIGN, ZCU104_DESIGN
from repro.models import (ModelConfig, MultiLayerTGNN, TGNN)
from repro.models.memory_updater import (GRUMemoryUpdater, RNNMemoryUpdater)
from repro.models.time_encoding import LUTTimeEncoder
from repro.perf import PerformanceModel

SMALL = ModelConfig(memory_dim=8, time_dim=6, embed_dim=8, edge_dim=12,
                    num_neighbors=4)


class TestPremultipliedUpdaters:
    @pytest.mark.parametrize("updater_cls", [GRUMemoryUpdater,
                                             RNNMemoryUpdater])
    def test_premul_equals_dense(self, updater_cls):
        rng = np.random.default_rng(0)
        enc = LUTTimeEncoder(SMALL.time_dim, n_bins=8, rng=rng)
        enc.calibrate(rng.pareto(1.3, 2000) * 1e4)
        upd = updater_cls(SMALL.with_(lut_time_encoder=True), enc, rng=rng)
        raw = rng.normal(size=(7, SMALL.raw_message_dim))
        dt = rng.uniform(0, 1e5, 7)
        mem = rng.normal(size=(7, SMALL.memory_dim))
        dense = upd.forward_numpy(raw, dt, mem)
        premul = enc.premultiply(upd.input_time_weight())
        fast = upd.forward_numpy_premul(raw, enc.bin_index(dt), premul, mem)
        assert np.allclose(dense, fast, atol=1e-12)

    def test_input_time_weight_shapes(self):
        enc = LUTTimeEncoder(SMALL.time_dim, n_bins=8)
        gru = GRUMemoryUpdater(SMALL, enc)
        rnn = RNNMemoryUpdater(SMALL, enc)
        assert gru.input_time_weight().shape == (3 * SMALL.memory_dim,
                                                 SMALL.time_dim)
        assert rnn.input_time_weight().shape == (SMALL.memory_dim,
                                                 SMALL.time_dim)


class TestAttentionGradients:
    def test_vanilla_attention_parameter_gradcheck(self):
        from repro.models.attention import VanillaTemporalAttention
        cfg = ModelConfig(memory_dim=4, time_dim=3, embed_dim=4, edge_dim=2,
                          num_neighbors=3)
        attn = VanillaTemporalAttention(cfg, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        q = Tensor(rng.normal(size=(2, 4)))
        nbr = Tensor(rng.normal(size=(2, 3, 4)))
        ef = rng.normal(size=(2, 3, 2))
        te = Tensor(rng.normal(size=(2, 3, 3)))
        tz = Tensor(rng.normal(size=(2, 3)))
        mask = np.array([[True, True, False], [True, True, True]])

        def loss(wq, wk, wv):
            out = attn(q, nbr, ef, te, tz, mask)
            return (out.hidden ** 2).sum()

        check_gradients(loss, [attn.w_q.weight, attn.w_k.weight,
                               attn.w_v.weight], atol=1e-4, rtol=1e-3)

    def test_simplified_attention_parameter_gradcheck(self):
        from repro.models.attention import SimplifiedTemporalAttention
        cfg = ModelConfig(memory_dim=4, time_dim=3, embed_dim=4, edge_dim=2,
                          num_neighbors=3, simplified_attention=True)
        attn = SimplifiedTemporalAttention(cfg, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        q = Tensor(rng.normal(size=(2, 4)))
        nbr = Tensor(rng.normal(size=(2, 3, 4)))
        ef = rng.normal(size=(2, 3, 2))
        te = Tensor(rng.normal(size=(2, 3, 3)))
        tz = Tensor(rng.normal(size=(2, 3)))
        mask = np.ones((2, 3), dtype=bool)
        dt = rng.uniform(0, 2, size=(2, 3))

        def loss(a, wt, wv):
            out = attn(q, nbr, ef, te, tz, mask, dt_scaled=dt)
            return (out.hidden ** 2).sum()

        check_gradients(loss, [attn.attn_bias, attn.w_t.weight,
                               attn.w_v.weight], atol=1e-4, rtol=1e-3)


class TestTraceWithWindows:
    def test_trace_over_window_batches(self):
        g = wikipedia_like(num_edges=400, num_users=60, num_items=15)
        cfg = SMALL.with_(edge_dim=172, simplified_attention=True,
                          lut_time_encoder=True, lut_bins=8,
                          pruning_budget=2)
        model = TGNN(cfg, rng=np.random.default_rng(0))
        model.calibrate(g)
        acc = FPGAAccelerator(model, ZCU104_DESIGN)
        windows = list(iter_time_windows(g, 6 * 3600.0))[:5]
        # batch_size is ignored when explicit batches are supplied.
        rep = acc.run_stream(g, batch_size=1, batches=windows, trace=True)
        assert rep.n_edges == sum(len(w) for w in windows)
        assert len(rep.events) > 0
        assert len(rep.batch_latencies_s) == len(windows)


class TestMultiLayerCombos:
    def test_two_layer_simplified_lut(self):
        g = wikipedia_like(num_edges=300, num_users=50, num_items=12)
        cfg = ModelConfig(memory_dim=8, time_dim=6, embed_dim=8,
                          edge_dim=172, num_neighbors=3,
                          simplified_attention=True, lut_time_encoder=True,
                          lut_bins=8)
        ml = MultiLayerTGNN(cfg, num_layers=2, rng=np.random.default_rng(0))
        ml.calibrate(g)
        rt = ml.new_runtime(g)
        with no_grad():
            res = ml.process_batch(g.slice(0, 40), rt, g)
        assert res.embeddings.shape == (80, 8)
        assert np.all(np.isfinite(res.embeddings.data))

    def test_two_layer_with_pruning(self):
        g = wikipedia_like(num_edges=300, num_users=50, num_items=12)
        cfg = ModelConfig(memory_dim=8, time_dim=6, embed_dim=8,
                          edge_dim=172, num_neighbors=4,
                          simplified_attention=True, pruning_budget=2)
        ml = MultiLayerTGNN(cfg, num_layers=2, rng=np.random.default_rng(0))
        rt = ml.new_runtime(g)
        with no_grad():
            res = ml.process_batch(g.slice(0, 40), rt, g)
        assert np.all(np.isfinite(res.embeddings.data))


class TestBudgetIndependentCriticalPath:
    def test_perf_model_period_budget_independent_on_u200(self):
        """EXPERIMENTS.md E6 deviation, codified: at the published U200
        design point the pipeline period does not depend on the pruning
        budget (the FTM / GRU gate arrays dominate), while T_LS does."""
        periods, tls = [], []
        for budget in (6, 4, 2):
            cfg = ModelConfig(simplified_attention=True,
                              lut_time_encoder=True, pruning_budget=budget)
            pred = PerformanceModel(cfg, U200_DESIGN).pipeline_period()
            periods.append(pred.tp_s)
            tls.append(pred.t_ls_s)
        assert periods[0] == periods[1] == periods[2]
        assert tls[0] > tls[1] > tls[2]
