"""Unit tests for the MAC/MEM operation counter (Tables I-II reproduction)."""

import numpy as np
import pytest

from repro.models import ModelConfig, variant_ladder
from repro.profiling import (Convention, count_ops, count_ops_apan,
                             format_table, table1_breakdown, table2_ladder)
from repro.profiling.paper_reference import TABLE2

WIKI = ModelConfig()                       # paper dims for Wikipedia/Reddit
GDELT = ModelConfig(edge_dim=0, node_dim=200)


class TestPaperConvention:
    def test_wikipedia_gru_matches_paper_exactly(self):
        c = count_ops(WIKI)
        assert c.gru_macs == pytest.approx(48.4e3)

    def test_gdelt_gru_matches_paper_exactly(self):
        c = count_ops(GDELT)
        assert c.gru_macs == pytest.approx(51.2e3)

    def test_lut_gru_delta_matches_paper(self):
        base = count_ops(WIKI)
        lut = count_ops(WIKI.with_(simplified_attention=True,
                                   lut_time_encoder=True))
        assert base.gru_macs - lut.gru_macs == pytest.approx(10.1e3)

    def test_wikipedia_kmem_matches_paper(self):
        c = count_ops(WIKI)
        assert c.total_mems == pytest.approx(5.7e3, rel=0.01)

    def test_ladder_percentages_close_to_paper(self):
        ours = table2_ladder(WIKI)
        paper = TABLE2["wikipedia"]
        for o, p in zip(ours, paper):
            assert o["kMAC_pct"] == pytest.approx(p["kMAC_pct"], abs=3.0), \
                o["model"]
            assert o["kMEM_pct"] == pytest.approx(p["kMEM_pct"], abs=2.0), \
                o["model"]

    def test_sat_halves_gnn(self):
        base = count_ops(WIKI)
        sat = count_ops(WIKI.with_(simplified_attention=True))
        assert sat.gnn_macs == pytest.approx(base.gnn_macs / 2, rel=0.12)

    def test_pruning_linear_in_budget(self):
        lut = WIKI.with_(simplified_attention=True, lut_time_encoder=True)
        per_nbr = []
        for k in (6, 4, 2):
            c = count_ops(lut.with_(pruning_budget=k))
            per_nbr.append(c.gnn_macs)
        d1 = per_nbr[0] - per_nbr[1]   # 6 -> 4
        d2 = per_nbr[1] - per_nbr[2]   # 4 -> 2
        assert d1 == pytest.approx(d2, rel=0.01)

    def test_headline_compute_reduction(self):
        """§VI claim: 84 % computation reduction, 67 % fewer MEMs (NP(S))."""
        base = count_ops(WIKI)
        nps = count_ops(WIKI.with_(simplified_attention=True,
                                   lut_time_encoder=True, pruning_budget=2))
        assert 1 - nps.total_macs / base.total_macs > 0.80
        assert 1 - nps.total_mems / base.total_mems > 0.60


class TestFullConvention:
    def test_full_counts_higher_than_paper_convention(self):
        p = count_ops(WIKI, Convention.PAPER)
        f = count_ops(WIKI, Convention.FULL)
        assert f.gru_macs > p.gru_macs       # 3 gates + hidden products
        assert f.total_macs > p.total_macs

    def test_reductions_hold_in_both_conventions(self):
        for conv in Convention:
            base = count_ops(WIKI, conv)
            nps = count_ops(WIKI.with_(simplified_attention=True,
                                       lut_time_encoder=True,
                                       pruning_budget=2), conv)
            assert nps.total_macs < 0.35 * base.total_macs, conv


class TestStructure:
    def test_parts_partition_totals(self):
        c = count_ops(WIKI)
        assert c.total_macs == pytest.approx(sum(c.macs.values()))
        assert c.total_mems == pytest.approx(sum(c.mems.values()))

    def test_gnn_part_has_zero_mems(self):
        assert count_ops(WIKI).mems["gnn"] == 0.0

    def test_sample_and_update_have_zero_macs(self):
        c = count_ops(WIKI)
        assert c.macs["sample"] == 0.0 and c.macs["update"] == 0.0

    def test_scaled(self):
        c = count_ops(WIKI)
        d = c.scaled(2.0)
        assert d.total_macs == pytest.approx(2 * c.total_macs)

    def test_table1_breakdown_rows(self):
        rows = table1_breakdown(WIKI)
        parts = [r["part"] for r in rows]
        assert parts == ["sample", "memory", "gnn", "update", "total"]
        assert rows[-1]["kMAC_pct"] == 100.0

    def test_format_table_renders(self):
        rows = table2_ladder(WIKI)
        text = format_table(rows)
        assert "baseline" in text and "+NP(S)" in text


class TestAPANCounts:
    def test_latency_path_cheaper_than_tgn(self):
        tgn = count_ops(WIKI)
        apan = count_ops_apan(WIKI, mailbox_size=10)
        assert apan.total_mems < tgn.total_mems   # no neighbor fetches
        assert apan.mems["update"] == 0.0         # async, off-path

    def test_mailbox_size_scales_compute(self):
        small = count_ops_apan(WIKI, mailbox_size=5)
        large = count_ops_apan(WIKI, mailbox_size=20)
        assert large.total_macs > small.total_macs
