"""Versioned cross-shard memory sync: cache protocol + exactness tests.

The headline acceptance test of the memsync subsystem lives here: a
sharded ``TGNN.process_batch`` replay under ``memsync='push'`` produces
vertex-memory tables — and therefore ``BatchResult`` outputs for held
vertices — bit-identical to the unsharded runtime, on >= 2 shards, with
and without replication.  ``'none'`` reproduces (and measures) the
stale-mirror divergence the subsystem exists to close.
"""

import numpy as np
import pytest

from repro.autograd import no_grad
from repro.datasets import wikipedia_like
from repro.graph import iter_fixed_size
from repro.models import ModelConfig, TGNN
from repro.pipeline import LinearCostBackend
from repro.serving import (MEMSYNC_POLICIES, Placement, ReplicatedReadMostly,
                           ServingEngine, ShardedRuntime, StaticHashPlacement,
                           VersionedMemoryCache, VertexHeat)

CFG = ModelConfig(memory_dim=8, time_dim=6, embed_dim=8, edge_dim=172,
                  num_neighbors=4, simplified_attention=True,
                  lut_time_encoder=True, lut_bins=8, pruning_budget=2)


def setup():
    g = wikipedia_like(num_edges=600, num_users=80, num_items=20)
    model = TGNN(CFG, rng=np.random.default_rng(0))
    model.calibrate(g)
    return g, model


def two_shard_placement():
    return Placement(assignment=np.array([0, 0, 1, 1]), num_shards=2)


# --------------------------------------------------------------------------- #
class TestVersionedMemoryCache:
    def test_owner_write_bumps_version_once_per_batch(self):
        c = VersionedMemoryCache(two_shard_placement(), policy="none")
        c.note_writes(np.array([0, 2, 2]), present_shards=[0, 1])
        assert c.version.tolist() == [1, 0, 1, 0]
        c.note_writes(np.array([2]), present_shards=[1])
        assert c.version.tolist() == [1, 0, 2, 0]

    def test_holders_are_never_stale(self):
        c = VersionedMemoryCache(two_shard_placement(), policy="none")
        c.note_writes(np.array([0]), present_shards=[0])
        out = c.note_reads(0, np.array([0, 1]))    # shard 0 owns both
        assert out.stale_reads == 0 and not len(out.pulled)

    def test_never_written_rows_are_not_stale(self):
        c = VersionedMemoryCache(two_shard_placement(), policy="invalidate")
        out = c.note_reads(1, np.array([0, 1]))
        assert not len(out.pulled) and out.stale_reads == 0

    def test_none_counts_staleness_and_never_repairs(self):
        c = VersionedMemoryCache(two_shard_placement(), policy="none")
        c.note_writes(np.array([0]), present_shards=[0, 1])
        c.note_writes(np.array([0]), present_shards=[0, 1])
        out = c.note_reads(1, np.array([0]))
        assert out.stale_reads == 1 and out.max_lag == 2
        assert not len(out.pulled)
        # Next read is still stale — mirrors never refresh under none.
        out = c.note_reads(1, np.array([0]))
        assert out.stale_reads == 1
        assert c.stale_reads == 2 and c.max_version_lag == 2
        assert c.sync_rows == 0

    def test_invalidate_pulls_once_until_next_write(self):
        c = VersionedMemoryCache(two_shard_placement(), policy="invalidate")
        c.note_writes(np.array([0]), present_shards=[0])
        out = c.note_reads(1, np.array([0]))
        assert out.pulled.tolist() == [0] and out.stale_reads == 0
        # Repaired: a re-read is free until the owner writes again.
        assert not len(c.note_reads(1, np.array([0])).pulled)
        c.note_writes(np.array([0]), present_shards=[0])
        assert c.note_reads(1, np.array([0])).pulled.tolist() == [0]
        assert c.pulled_rows == 2 and c.pushed_rows == 0

    def test_push_forwards_to_present_mirrors_only(self):
        c = VersionedMemoryCache(two_shard_placement(), policy="push")
        # No mirror yet: the first write pushes nothing anywhere.
        assert c.note_writes(np.array([0]), present_shards=[0, 1]) == {}
        # Cold read pulls and subscribes the mirror.
        assert c.note_reads(1, np.array([0])).pulled.tolist() == [0]
        # Now a write with the mirror present delivers the row eagerly...
        pushes = c.note_writes(np.array([0]), present_shards=[0, 1])
        assert pushes[1].tolist() == [0]
        assert not len(c.note_reads(1, np.array([0])).pulled)
        # ...but an absent mirror lags and repairs via the pull fallback.
        assert c.note_writes(np.array([0]), present_shards=[0]) == {}
        assert c.note_reads(1, np.array([0])).pulled.tolist() == [0]
        assert c.pushed_rows == 1 and c.pulled_rows == 2

    def test_push_never_targets_holders(self):
        heat_n = 6
        p = Placement(assignment=np.array([0, 0, 1, 1, 0, 1]), num_shards=2,
                      replicas={0: (1,)})
        c = VersionedMemoryCache(p, policy="push")
        # Vertex 0 is held by both shards: shard 1 is a replica, not a
        # mirror, so nothing is ever pulled or pushed for it.
        c.note_writes(np.array([0]), present_shards=[0, 1])
        assert not len(c.note_reads(1, np.array([0])).pulled)
        assert c.note_writes(np.array([0]), present_shards=[0, 1]) == {}
        assert c.sync_rows == 0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            VersionedMemoryCache(two_shard_placement(), policy="gossip")


# --------------------------------------------------------------------------- #
def unsharded_reference(model, graph, batch_size=50):
    rt = model.new_runtime(graph)
    with no_grad():
        results = [model.process_batch(b, rt, graph)
                   for b in iter_fixed_size(graph, batch_size)]
    return rt, results


def assert_held_state_bit_identical(srt, rt):
    for shard in range(srt.router.num_shards):
        held = srt.held_vertices(shard)
        st = srt.runtimes[shard].state
        assert np.array_equal(st.memory[held], rt.state.memory[held])
        assert np.array_equal(st.mailbox[held], rt.state.mailbox[held])
        assert np.array_equal(st.mail_time[held], rt.state.mail_time[held])
        assert np.array_equal(st.last_update[held],
                              rt.state.last_update[held])


def assert_held_outputs_bit_identical(srt, graph, ref, outs, batch_size=50):
    """Every held query row of every shard equals the unsharded row."""
    checked = 0
    for batch, ref_res, by_shard in zip(iter_fixed_size(graph, batch_size),
                                        ref, outs):
        pos = {int(e): i for i, e in enumerate(batch.eid)}
        for sb in srt.router.split(batch):
            res = by_shard[sb.shard]
            rows = np.empty(len(res.nodes), dtype=np.int64)
            for k in range(len(sb.batch)):
                p = pos[int(sb.batch.eid[k])]
                rows[2 * k], rows[2 * k + 1] = 2 * p, 2 * p + 1
            held = srt.router._member[sb.shard, res.nodes]
            assert np.array_equal(res.embeddings.data[held],
                                  ref_res.embeddings.data[rows[held]])
            checked += int(held.sum())
    assert checked > 0


class TestShardedRuntimeExactness:
    """The headline acceptance tests: sync policies close the stale-mirror
    correctness gap bit-for-bit."""

    @pytest.mark.parametrize("policy", ["push", "invalidate"])
    @pytest.mark.parametrize("num_shards", [2, 3])
    def test_sync_policies_bit_identical_to_unsharded(self, policy,
                                                      num_shards):
        g, model = setup()
        rt, ref = unsharded_reference(model, g)
        srt = ShardedRuntime(model, g, num_shards=num_shards, policy=policy)
        with no_grad():
            outs = [srt.process_batch(b) for b in iter_fixed_size(g, 50)]
        assert_held_state_bit_identical(srt, rt)
        assert_held_outputs_bit_identical(srt, g, ref, outs)
        # Exactness was bought with traffic, not tolerated staleness.
        assert srt.cache.sync_rows > 0
        assert srt.cache.stale_reads == 0
        assert srt.cache.max_version_lag == 0
        assert srt.mailbox.total_sync_rows == srt.cache.sync_rows

    @pytest.mark.parametrize("policy", ["push", "invalidate"])
    def test_exact_under_replication(self, policy):
        g, model = setup()
        rt, ref = unsharded_reference(model, g)
        heat = VertexHeat.from_graph(g)
        placement = ReplicatedReadMostly(top_k=4).place(heat, 3)
        assert placement.replicated_vertices > 0
        srt = ShardedRuntime(model, g, placement=placement, policy=policy)
        with no_grad():
            outs = [srt.process_batch(b) for b in iter_fixed_size(g, 50)]
        assert_held_state_bit_identical(srt, rt)
        assert_held_outputs_bit_identical(srt, g, ref, outs)

    def test_none_reproduces_the_stale_mirror_divergence(self):
        """The bug the subsystem closes, demonstrated: without sync, held
        memory rows diverge from the unsharded runtime and the cache
        measures the staleness that caused it."""
        g, model = setup()
        rt, _ = unsharded_reference(model, g)
        srt = ShardedRuntime(model, g, num_shards=3, policy="none")
        with no_grad():
            for b in iter_fixed_size(g, 50):
                srt.process_batch(b)
        diverged = any(
            not np.allclose(
                srt.runtimes[s].state.memory[srt.held_vertices(s)],
                rt.state.memory[srt.held_vertices(s)])
            for s in range(3))
        assert diverged
        assert srt.cache.sync_rows == 0
        assert srt.cache.stale_reads > 0
        assert srt.cache.max_version_lag > 0

    def test_push_pays_at_least_the_invalidate_traffic(self):
        """Each pull under invalidate maps to >= 1 transfer under push in
        the same write interval, so push traffic dominates."""
        g, model = setup()
        totals = {}
        for policy in ("invalidate", "push"):
            srt = ShardedRuntime(model, g, num_shards=3, policy=policy)
            with no_grad():
                for b in iter_fixed_size(g, 50):
                    srt.process_batch(b)
            totals[policy] = srt.cache.sync_rows
        assert totals["push"] >= totals["invalidate"] > 0

    def test_single_shard_needs_no_sync(self):
        g, model = setup()
        srt = ShardedRuntime(model, g, num_shards=1, policy="push")
        with no_grad():
            for b in iter_fixed_size(g, 100):
                srt.process_batch(b)
        assert srt.cache.sync_rows == 0
        assert srt.mailbox.total_edges == 0

    def test_validation(self):
        g, model = setup()
        with pytest.raises(ValueError):
            ShardedRuntime(model, g)                    # no shard count
        with pytest.raises(ValueError):
            ShardedRuntime(model, g, num_shards=2, policy="gossip")


# --------------------------------------------------------------------------- #
class TestEngineMemsync:
    """Pricing-side threading: the serving engine reports and charges the
    sync traffic without running the functional protocol."""

    def engine(self, g, shards=4, **kw):
        return ServingEngine([LinearCostBackend(per_edge_s=1e-3)
                              for _ in range(shards)], g.num_nodes, **kw)

    def run(self, engine, g):
        return engine.run(g, window_s=3600.0, speedup=2.0, num_streams=2)

    def test_report_fields_per_policy(self):
        g = wikipedia_like(num_edges=600, num_users=80, num_items=20)
        reps = {p: self.run(self.engine(g, memsync=p), g)
                for p in MEMSYNC_POLICIES}
        none, inval, push = (reps[p] for p in MEMSYNC_POLICIES)
        assert none.memsync == "none"
        assert none.sync_edges == 0
        assert none.stale_reads > 0 and none.max_version_lag > 0
        for rep in (inval, push):
            assert rep.sync_edges > 0
            assert rep.stale_reads == 0 and rep.max_version_lag == 0
        assert push.sync_edges >= inval.sync_edges
        for rep in reps.values():
            d = rep.to_dict()
            for key in ("memsync", "sync_edges", "stale_reads",
                        "max_version_lag"):
                assert key in d

    def test_none_is_byte_identical_to_default_engine(self):
        """Acceptance: --memsync none reproduces the no-memsync report."""
        g = wikipedia_like(num_edges=600, num_users=80, num_items=20)
        base = self.run(self.engine(g), g)
        none = self.run(self.engine(g, memsync="none"), g)
        assert none.to_json() == base.to_json()

    def test_sync_traffic_prices_into_service_times(self):
        """With a die plan, pulled rows cost round-trips and pushed rows
        cost a hop — so sync policies inflate busy time over none."""
        g = wikipedia_like(num_edges=600, num_users=80, num_items=20)
        kw = dict(die_of=[0, 1, 0, 1], mail_hop_s=1e-3)
        busy = {}
        for policy in MEMSYNC_POLICIES:
            rep = self.run(self.engine(g, memsync=policy, **kw), g)
            busy[policy] = sum(s.busy_s for s in rep.shard_stats)
        assert busy["invalidate"] > busy["none"]
        assert busy["push"] > busy["none"]
        # Without a die plan the same traffic is free (co-located shards).
        rep = self.run(self.engine(g, memsync="push"), g)
        base = self.run(self.engine(g), g)
        assert sum(s.busy_s for s in rep.shard_stats) == \
            pytest.approx(sum(s.busy_s for s in base.shard_stats))

    def test_pool_rejects_memsync(self):
        g = wikipedia_like(num_edges=100, num_users=20, num_items=5)
        with pytest.raises(ValueError):
            ServingEngine([LinearCostBackend()], g.num_nodes,
                          topology="pool", memsync="push")
        with pytest.raises(ValueError):
            self.engine(g, memsync="gossip")

    def test_pool_report_carries_none_policy(self):
        g = wikipedia_like(num_edges=200, num_users=30, num_items=8)
        rep = ServingEngine([LinearCostBackend()], g.num_nodes,
                            topology="pool", pool_servers=3).run(
            g, window_s=3600.0)
        assert rep.memsync == "none" and rep.sync_edges == 0
