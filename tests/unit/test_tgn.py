"""Unit tests for the full TGNN model (Algorithm 1 semantics)."""

import numpy as np
import pytest

from repro.autograd import no_grad
from repro.datasets import wikipedia_like
from repro.graph import TemporalGraph, iter_fixed_size
from repro.models import ModelConfig, TGNN

SMALL = ModelConfig(memory_dim=8, time_dim=6, embed_dim=8, edge_dim=172,
                    num_neighbors=4)


def tiny_stream():
    return wikipedia_like(num_edges=160, num_users=30, num_items=8)


class TestProcessBatch:
    def test_embedding_shapes(self):
        g = tiny_stream()
        model = TGNN(SMALL, rng=np.random.default_rng(0))
        rt = model.new_runtime(g)
        with no_grad():
            res = model.process_batch(g.slice(0, 10), rt, g)
        assert res.embeddings.shape == (20, 8)
        assert res.src_embeddings.shape == (10, 8)
        assert res.dst_embeddings.shape == (10, 8)
        assert len(res.neg_embeddings) == 0

    def test_negative_queries_appended(self):
        g = tiny_stream()
        model = TGNN(SMALL, rng=np.random.default_rng(0))
        rt = model.new_runtime(g)
        neg = np.array([1, 2, 3])
        with no_grad():
            res = model.process_batch(g.slice(0, 10), rt, g, neg_dst=neg)
        assert res.embeddings.shape == (23, 8)
        assert res.neg_embeddings.shape == (3, 8)
        assert np.array_equal(res.nodes[-3:], neg)

    def test_negative_queries_do_not_touch_state(self):
        g = tiny_stream()
        m1 = TGNN(SMALL, rng=np.random.default_rng(0))
        m2 = TGNN(SMALL, rng=np.random.default_rng(0))
        m2.load_state_dict(m1.state_dict())
        rt1, rt2 = m1.new_runtime(g), m2.new_runtime(g)
        with no_grad():
            m1.process_batch(g.slice(0, 10), rt1, g)
            m2.process_batch(g.slice(0, 10), rt2, g,
                             neg_dst=np.array([5, 6, 7, 8]))
        assert np.allclose(rt1.state.memory, rt2.state.memory)
        assert np.allclose(rt1.state.mailbox, rt2.state.mailbox)

    def test_memory_evolves_only_for_touched_vertices(self):
        g = tiny_stream()
        model = TGNN(SMALL, rng=np.random.default_rng(0))
        rt = model.new_runtime(g)
        with no_grad():
            model.process_batch(g.slice(0, 10), rt, g)   # mail written
            model.process_batch(g.slice(10, 20), rt, g)  # mail consumed
        batch_nodes = set(g.slice(0, 20).nodes.tolist())
        touched = np.nonzero(np.any(rt.state.memory != 0.0, axis=1))[0]
        assert set(touched.tolist()) <= batch_nodes
        assert len(touched) > 0

    def test_first_batch_memory_unchanged(self):
        # No cached mail yet -> UPDT is a no-op on zero memory.
        g = tiny_stream()
        model = TGNN(SMALL, rng=np.random.default_rng(0))
        rt = model.new_runtime(g)
        with no_grad():
            model.process_batch(g.slice(0, 10), rt, g)
        assert np.allclose(rt.state.memory, 0.0)
        assert rt.state.has_mail(g.slice(0, 10).nodes).all()

    def test_embeddings_nonnegative_after_relu(self):
        g = tiny_stream()
        model = TGNN(SMALL, rng=np.random.default_rng(0))
        rt = model.new_runtime(g)
        with no_grad():
            res = model.process_batch(g.slice(0, 10), rt, g)
        assert np.all(res.embeddings.data >= 0.0)

    def test_gradients_reach_every_parameter(self):
        g = tiny_stream()
        model = TGNN(SMALL, rng=np.random.default_rng(0))
        rt = model.new_runtime(g)
        model.process_batch(g.slice(0, 20), rt, g)  # populate mail
        res = model.process_batch(g.slice(20, 40), rt, g)
        (res.embeddings ** 2).sum().backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert missing == [], missing


class TestInferenceEquivalence:
    @pytest.mark.parametrize("cfg", [
        SMALL,
        SMALL.with_(simplified_attention=True, name="sat"),
        SMALL.with_(simplified_attention=True, lut_time_encoder=True,
                    lut_bins=8, name="lut"),
        SMALL.with_(simplified_attention=True, lut_time_encoder=True,
                    lut_bins=8, pruning_budget=2, name="np"),
    ], ids=lambda c: c.name)
    def test_infer_matches_process(self, cfg):
        g = tiny_stream()
        model = TGNN(cfg, rng=np.random.default_rng(1))
        model.calibrate(g)
        rt_a = model.new_runtime(g)
        with no_grad():
            ref = [model.process_batch(b, rt_a, g).embeddings.data
                   for b in iter_fixed_size(g, 32)]
        model.prepare_inference()
        rt_b = model.new_runtime(g)
        got = [model.infer_batch(b, rt_b, g).embeddings.data
               for b in iter_fixed_size(g, 32)]
        for a, b in zip(ref, got):
            assert np.allclose(a, b, atol=1e-9)
        assert np.allclose(rt_a.state.memory, rt_b.state.memory, atol=1e-9)

    def test_timings_collected(self):
        g = tiny_stream()
        model = TGNN(SMALL, rng=np.random.default_rng(0))
        rt = model.new_runtime(g)
        timings = {}
        for b in iter_fixed_size(g, 32):
            model.infer_batch(b, rt, g, timings=timings)
        assert set(timings) == {"sample", "memory", "gnn", "update"}
        assert all(v > 0 for v in timings.values())


class TestRuntime:
    def test_snapshot_restore_roundtrip(self):
        g = tiny_stream()
        model = TGNN(SMALL, rng=np.random.default_rng(0))
        rt = model.new_runtime(g)
        with no_grad():
            model.process_batch(g.slice(0, 40), rt, g)
        snap = rt.snapshot()
        with no_grad():
            model.process_batch(g.slice(40, 80), rt, g)
        rt.restore(snap)
        rt2 = model.new_runtime(g)
        with no_grad():
            model.process_batch(g.slice(0, 40), rt2, g)
        assert np.allclose(rt.state.memory, rt2.state.memory)
        assert np.array_equal(rt.sampler.table._times, rt2.sampler.table._times)

    def test_reset(self):
        g = tiny_stream()
        model = TGNN(SMALL, rng=np.random.default_rng(0))
        rt = model.new_runtime(g)
        with no_grad():
            model.process_batch(g.slice(0, 40), rt, g)
        rt.reset()
        assert np.allclose(rt.state.memory, 0.0)
        assert not rt.sampler.table.gather(np.array([0])).mask.any()

    def test_calibrate_noop_for_cosine(self):
        g = tiny_stream()
        model = TGNN(SMALL, rng=np.random.default_rng(0))
        model.calibrate(g)  # must not raise

    def test_gdelt_style_node_features(self):
        from repro.datasets import gdelt_like
        g = gdelt_like(num_edges=120, num_users=20, num_items=20)
        cfg = ModelConfig(memory_dim=8, time_dim=6, embed_dim=8, edge_dim=0,
                          node_dim=200, num_neighbors=3)
        model = TGNN(cfg, rng=np.random.default_rng(0))
        assert model.node_proj is not None
        rt = model.new_runtime(g)
        with no_grad():
            ref = [model.process_batch(b, rt, g).embeddings.data
                   for b in iter_fixed_size(g, 24)]
        rt2 = model.new_runtime(g)
        got = [model.infer_batch(b, rt2, g).embeddings.data
               for b in iter_fixed_size(g, 24)]
        for a, b in zip(ref, got):
            assert np.allclose(a, b, atol=1e-9)
