"""Unit tests for ``repro-lint`` (repro.analysis.linting / rules).

Every rule gets a fire/silent pair: a minimal bad example that must
produce exactly the expected finding, and the fixed idiom that must stay
silent.  Paths are faked ("src/repro/serving/engine.py", ...) because
rules scope themselves by path; sources are synthetic snippets.
"""

import os

from repro.analysis import ALL_RULES, LintFinding, default_rules, lint_file
from repro.analysis.cli import main as lint_main
from repro.analysis.rules import (FloatSumReportRule, ReportOmitWhenOffRule,
                                  SchedulerPurityRule, UnorderedIterationRule,
                                  UnseededRngRule, WallClockInEventsRule)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def findings_for(rule_cls, path, source):
    return lint_file(path, [rule_cls()], source=source)


def rule_names(findings):
    return [f.rule for f in findings]


# --------------------------------------------------------------------------- #
class TestUnseededRng:
    PATH = "src/repro/models/tgnn.py"

    def test_legacy_global_api_fires(self):
        src = ("import numpy as np\n"
               "def f():\n"
               "    return np.random.rand(3)\n")
        fs = findings_for(UnseededRngRule, self.PATH, src)
        assert rule_names(fs) == ["unseeded-rng"]
        assert "np.random.rand" in fs[0].message

    def test_unseeded_default_rng_fires(self):
        src = ("import numpy as np\n"
               "rng = np.random.default_rng()\n")
        fs = findings_for(UnseededRngRule, self.PATH, src)
        assert rule_names(fs) == ["unseeded-rng"]
        assert "OS entropy" in fs[0].message

    def test_hardcoded_seed_fires(self):
        src = ("import numpy as np\n"
               "def f():\n"
               "    return np.random.default_rng(42)\n")
        fs = findings_for(UnseededRngRule, self.PATH, src)
        assert rule_names(fs) == ["unseeded-rng"]
        assert "hard-coded seed" in fs[0].message

    def test_stdlib_random_fires(self):
        src = ("import random\n"
               "def f():\n"
               "    return random.random()\n")
        fs = findings_for(UnseededRngRule, self.PATH, src)
        assert rule_names(fs) == ["unseeded-rng"]

    def test_threaded_generator_silent(self):
        src = ("import numpy as np\n"
               "def f(rng, spec):\n"
               "    a = rng.normal(size=3)\n"
               "    b = np.random.default_rng(spec.seed)\n"
               "    c = np.random.default_rng(seed)\n"
               "    return a, b, c\n")
        assert findings_for(UnseededRngRule, self.PATH, src) == []

    def test_tests_are_exempt(self):
        src = ("import numpy as np\n"
               "rng = np.random.default_rng(0)\n")
        assert findings_for(UnseededRngRule,
                            "tests/unit/test_x.py", src) == []


class TestWallClockInEvents:
    EVENTS = "src/repro/serving/events.py"

    def test_perf_counter_fires_in_events(self):
        src = ("import time\n"
               "def handler():\n"
               "    return time.perf_counter()\n")
        fs = findings_for(WallClockInEventsRule, self.EVENTS, src)
        assert rule_names(fs) == ["wall-clock-in-events"]

    def test_from_import_alias_fires(self):
        src = ("from time import monotonic\n"
               "def handler():\n"
               "    return monotonic()\n")
        fs = findings_for(WallClockInEventsRule, self.EVENTS, src)
        assert any("monotonic" in f.message for f in fs)

    def test_other_modules_are_out_of_scope(self):
        src = ("import time\n"
               "t0 = time.perf_counter()\n")
        assert findings_for(WallClockInEventsRule,
                            "src/repro/serving/engine.py", src) == []

    def test_scheduler_time_silent(self):
        src = ("def handler(sched, event):\n"
               "    return sched.now + event.t\n")
        assert findings_for(WallClockInEventsRule, self.EVENTS, src) == []

    MEASURED = "src/repro/serving/measured.py"

    def test_measured_module_in_scope(self):
        src = ("import time\n"
               "def reconcile():\n"
               "    return time.perf_counter()\n")
        fs = findings_for(WallClockInEventsRule, self.MEASURED, src)
        assert rule_names(fs) == ["wall-clock-in-events"]

    def test_timed_kernel_carve_out_silent(self):
        src = ("import time\n"
               "def timed_kernel():\n"
               "    t0 = time.perf_counter()\n"
               "    return time.perf_counter() - t0\n")
        assert findings_for(WallClockInEventsRule, self.MEASURED, src) == []

    def test_carve_out_is_measured_only(self):
        # A function *named* timed_kernel in events.py gets no exemption:
        # the carve-out is tied to the one sanctioned site in measured.py.
        src = ("import time\n"
               "def timed_kernel():\n"
               "    return time.perf_counter()\n")
        fs = findings_for(WallClockInEventsRule, self.EVENTS, src)
        assert rule_names(fs) == ["wall-clock-in-events"]

    def test_sibling_function_still_fires_in_measured(self):
        src = ("import time\n"
               "def timed_kernel():\n"
               "    return time.perf_counter()\n"
               "def dispatch():\n"
               "    return time.monotonic()\n")
        fs = findings_for(WallClockInEventsRule, self.MEASURED, src)
        assert rule_names(fs) == ["wall-clock-in-events"]
        assert all("monotonic" in f.message for f in fs)


class TestUnorderedIteration:
    PATH = "src/repro/serving/router.py"

    def test_set_literal_fires(self):
        src = "xs = [x for x in {3, 1, 2}]\n"
        fs = findings_for(UnorderedIterationRule, self.PATH, src)
        assert rule_names(fs) == ["unordered-iteration"]

    def test_set_call_fires(self):
        src = ("def f(items):\n"
               "    for x in set(items):\n"
               "        pass\n")
        fs = findings_for(UnorderedIterationRule, self.PATH, src)
        assert rule_names(fs) == ["unordered-iteration"]

    def test_keys_fires(self):
        src = ("def f(d):\n"
               "    for k in d.keys():\n"
               "        pass\n")
        fs = findings_for(UnorderedIterationRule, self.PATH, src)
        assert ".keys()" in fs[0].message

    def test_sorted_and_plain_dict_silent(self):
        src = ("def f(d, items):\n"
               "    for x in sorted(set(items)):\n"
               "        pass\n"
               "    for k in d:\n"
               "        pass\n")
        assert findings_for(UnorderedIterationRule, self.PATH, src) == []

    def test_outside_serving_is_out_of_scope(self):
        src = "xs = [x for x in {3, 1, 2}]\n"
        assert findings_for(UnorderedIterationRule,
                            "src/repro/models/tgnn.py", src) == []


class TestFloatSumReport:
    PATH = "src/repro/serving/engine.py"

    def test_float_sum_fires(self):
        src = "total = sum(j.wait_s for j in jobs)\n"
        fs = findings_for(FloatSumReportRule, self.PATH, src)
        assert rule_names(fs) == ["float-sum-report"]

    def test_integer_summands_silent(self):
        src = ("a = sum(len(b.edges) for b in batches)\n"
               "b = sum(int(x) for x in xs)\n"
               "c = sum(1 for _ in xs)\n")
        assert findings_for(FloatSumReportRule, self.PATH, src) == []

    def test_fsum_silent(self):
        src = ("import math\n"
               "total = math.fsum(j.wait_s for j in jobs)\n")
        assert findings_for(FloatSumReportRule, self.PATH, src) == []


class TestReportOmitWhenOff:
    PATH = "src/repro/serving/engine.py"

    def test_unomitted_new_field_fires(self):
        src = ("class ServingReport:\n"
               "    topology: str = 'single'\n"
               "    shiny_new_counter: int = 0\n"
               "    def to_dict(self):\n"
               "        return {'topology': self.topology}\n")
        fs = findings_for(ReportOmitWhenOffRule, self.PATH, src)
        assert rule_names(fs) == ["report-omit-when-off"]
        assert "shiny_new_counter" in fs[0].message

    def test_omitted_field_silent(self):
        src = ("class ServingReport:\n"
               "    topology: str = 'single'\n"
               "    chaos: str = 'off'\n"
               "    def to_dict(self):\n"
               "        d = {'topology': self.topology, 'chaos': self.chaos}\n"
               "        if self.chaos == 'off':\n"
               "            del d['chaos']\n"
               "        return d\n")
        assert findings_for(ReportOmitWhenOffRule, self.PATH, src) == []

    def test_unomitted_scaling_block_fires(self):
        """The elastic-capacity block obeys the same contract: a
        ``scaling`` field that ``to_dict()`` never handles would stamp
        every static-fleet golden."""
        src = ("class ServingReport:\n"
               "    topology: str = 'single'\n"
               "    scaling: dict | None = None\n"
               "    def to_dict(self):\n"
               "        return {'topology': self.topology}\n")
        fs = findings_for(ReportOmitWhenOffRule, self.PATH, src)
        assert rule_names(fs) == ["report-omit-when-off"]
        assert "scaling" in fs[0].message

    def test_omitted_scaling_block_silent(self):
        src = ("class ServingReport:\n"
               "    topology: str = 'single'\n"
               "    scaling: dict | None = None\n"
               "    def to_dict(self):\n"
               "        d = {'topology': self.topology,\n"
               "             'scaling': self.scaling}\n"
               "        if d['scaling'] is None:\n"
               "            del d['scaling']\n"
               "        return d\n")
        assert findings_for(ReportOmitWhenOffRule, self.PATH, src) == []

    def test_other_files_out_of_scope(self):
        src = ("class ServingReport:\n"
               "    surprise: int = 7\n")
        assert findings_for(ReportOmitWhenOffRule,
                            "src/repro/serving/router.py", src) == []


class TestSchedulerPurity:
    PATH = "src/repro/serving/rebalance.py"

    def test_private_internal_fires(self):
        src = ("def f(sched):\n"
               "    sched._heap.append(None)\n")
        fs = findings_for(SchedulerPurityRule, self.PATH, src)
        assert rule_names(fs) == ["scheduler-purity"]
        assert "_heap" in fs[0].message

    def test_attribute_assignment_fires(self):
        src = ("def f(self):\n"
               "    self.sched.now = 0.0\n")
        fs = findings_for(SchedulerPurityRule, self.PATH, src)
        assert rule_names(fs) == ["scheduler-purity"]

    def test_public_api_silent(self):
        src = ("def f(sched, t, prio, ev, cb):\n"
               "    sched.schedule(t, prio, ev, cb)\n"
               "    sched.cancel(ev)\n"
               "    sched.record(ev)\n"
               "    return sched.now\n")
        assert findings_for(SchedulerPurityRule, self.PATH, src) == []

    def test_events_py_is_exempt(self):
        src = ("def f(sched):\n"
               "    sched._heap.append(None)\n")
        assert findings_for(SchedulerPurityRule,
                            "src/repro/serving/events.py", src) == []


# --------------------------------------------------------------------------- #
class TestPragmaSuppression:
    def test_named_pragma_waives_one_rule(self):
        src = ("import time\n"
               "t0 = time.perf_counter()  "
               "# repro-lint: ok=wall-clock-in-events (profiling site)\n")
        assert findings_for(WallClockInEventsRule,
                            "src/repro/serving/events.py", src) == []

    def test_ok_all_waives_everything(self):
        src = ("import numpy as np\n"
               "rng = np.random.default_rng()  # repro-lint: ok=all (demo)\n")
        assert lint_file("src/repro/models/x.py", default_rules(),
                         source=src) == []

    def test_pragma_for_other_rule_does_not_waive(self):
        src = ("import time\n"
               "t0 = time.perf_counter()  "
               "# repro-lint: ok=unseeded-rng (wrong rule)\n")
        fs = findings_for(WallClockInEventsRule,
                          "src/repro/serving/events.py", src)
        assert rule_names(fs) == ["wall-clock-in-events"]


class TestFramework:
    def test_finding_render_format(self):
        f = LintFinding("src/x.py", 3, 7, "unseeded-rng", "boom")
        assert f.render() == "src/x.py:3:7: [unseeded-rng] boom"

    def test_findings_sorted_and_located(self):
        src = ("import numpy as np\n"
               "b = np.random.default_rng()\n"
               "a = np.random.rand(2)\n")
        fs = findings_for(UnseededRngRule, "src/repro/models/x.py", src)
        assert [f.line for f in fs] == [2, 3]
        assert all(f.path == "src/repro/models/x.py" for f in fs)


# --------------------------------------------------------------------------- #
class TestCli:
    def test_repo_src_is_clean(self):
        """The acceptance gate: `repro-lint src/` exits 0 on this repo."""
        lines = []
        rc = lint_main([os.path.join(REPO_ROOT, "src")], out=lines.append)
        assert rc == 0, "\n".join(lines)
        assert lines[-1].startswith("repro-lint: clean")

    def test_findings_exit_one(self, tmp_path):
        bad = tmp_path / "module.py"
        bad.write_text("import numpy as np\n"
                       "rng = np.random.default_rng()\n")
        lines = []
        rc = lint_main([str(bad)], out=lines.append)
        assert rc == 1
        assert any("[unseeded-rng]" in ln for ln in lines)

    def test_select_unknown_rule_exits_two(self):
        lines = []
        rc = lint_main(["--select", "no-such-rule", "src"],
                       out=lines.append)
        assert rc == 2

    def test_list_rules_covers_full_ruleset(self):
        lines = []
        rc = lint_main(["--list-rules"], out=lines.append)
        assert rc == 0
        listed = {ln.split(":", 1)[0] for ln in lines}
        assert listed == {cls.name for cls in ALL_RULES}
        assert len(ALL_RULES) >= 5

    def test_select_scopes_ruleset(self, tmp_path):
        bad = tmp_path / "module.py"
        bad.write_text("import numpy as np\n"
                       "rng = np.random.default_rng()\n")
        lines = []
        rc = lint_main(["--select", "scheduler-purity", str(bad)],
                       out=lines.append)
        assert rc == 0  # the only violation is an unseeded-rng one
