"""Unit tests for placement policies, replication routing, and pool mode."""

import numpy as np
import pytest

from repro.datasets import wikipedia_like
from repro.graph import NeighborTable, iter_fixed_size
from repro.hw import plan_shard_dies, plan_shard_dies_traffic_aware
from repro.pipeline import LinearCostBackend
from repro.serving import (LoadAwareRebalance, Placement, PlacementPolicy,
                           ReplicatedReadMostly, ServingEngine, ShardRouter,
                           StaticHashPlacement, VertexHeat, hash_assignment,
                           make_policy)


def PerEdgeBackend(per_edge_s=5e-3, overhead_s=0.0):
    """Deterministic backend: fixed overhead + linear per-edge cost."""
    return LinearCostBackend(per_edge_s=per_edge_s, overhead_s=overhead_s)


def skewed_graph():
    """Zipf-hot users/items: the workload where static hash misbalances."""
    return wikipedia_like(num_edges=800, num_users=24, num_items=12)


def sharded_engine(graph, num_shards, placement=None, **backend_kw):
    return ServingEngine([PerEdgeBackend(**backend_kw)
                          for _ in range(num_shards)],
                         graph.num_nodes, placement=placement)


# --------------------------------------------------------------------------- #
class TestVertexHeat:
    def test_counts_match_bincount(self):
        g = skewed_graph()
        heat = VertexHeat.from_graph(g)
        assert np.array_equal(heat.src_count,
                              np.bincount(g.src, minlength=g.num_nodes))
        assert np.array_equal(heat.dst_count,
                              np.bincount(g.dst, minlength=g.num_nodes))
        assert heat.num_nodes == g.num_nodes
        assert heat.degree.sum() == 2 * g.num_edges

    def test_range_restriction(self):
        g = skewed_graph()
        heat = VertexHeat.from_graph(g, start=100, end=300)
        assert heat.src_count.sum() == 200

    def test_read_ratio_bounds_and_isolated(self):
        g = skewed_graph()
        heat = VertexHeat.from_graph(g, start=0, end=50)
        ratio = heat.read_ratio
        assert np.all((0.0 <= ratio) & (ratio <= 1.0))
        assert np.all(ratio[heat.degree == 0] == 0.0)
        # Bipartite stream: items only ever receive -> ratio 1 where active.
        items = np.unique(g.dst[:50])
        assert np.all(ratio[items] == 1.0)


# --------------------------------------------------------------------------- #
class TestPlacementContainer:
    def test_validation(self):
        with pytest.raises(ValueError):
            Placement(assignment=np.array([0, 1, 2]), num_shards=2)
        with pytest.raises(ValueError):
            Placement(assignment=np.array([0, 1]), num_shards=2,
                      replicas={0: (0,)})       # owner in replica set
        with pytest.raises(ValueError):
            Placement(assignment=np.array([0, 1]), num_shards=2,
                      replicas={0: (5,)})       # out of range

    def test_holders_and_counts(self):
        p = Placement(assignment=np.array([0, 1, 0]), num_shards=3,
                      replicas={0: (1, 2), 2: (1,)})
        assert p.holders(0) == (0, 1, 2)
        assert p.holders(1) == (1,)
        assert p.replicated_vertices == 2
        assert p.replica_copies == 3
        member = p.holder_matrix()
        assert member.shape == (3, 3)
        assert member[:, 0].all()               # vertex 0 on every shard
        assert member[:, 1].tolist() == [False, True, False]

    def test_mail_matrix_matches_router(self):
        """The predicted traffic matrix equals what the router records."""
        g = skewed_graph()
        heat = VertexHeat.from_graph(g)
        for placement in (StaticHashPlacement().place(heat, 4),
                          ReplicatedReadMostly(top_k=3).place(heat, 4)):
            router = ShardRouter.from_placement(placement)
            from repro.serving import CrossShardMailbox
            mailbox = CrossShardMailbox(4)
            for batch in iter_fixed_size(g, 100):
                router.split(batch, mailbox)
            assert np.array_equal(placement.mail_matrix(g.src, g.dst),
                                  mailbox.counts)


# --------------------------------------------------------------------------- #
class TestStaticHashPlacement:
    def test_matches_legacy_router_partition(self):
        """Extracting the hash must not change the partition PR 1 shipped."""
        g = skewed_graph()
        p = StaticHashPlacement().place(VertexHeat.from_graph(g), 4)
        legacy = ShardRouter(4, g.num_nodes)       # default construction
        assert np.array_equal(p.assignment, legacy.assignment)
        assert np.array_equal(p.assignment,
                              hash_assignment(g.num_nodes, 4))
        assert p.replicated_vertices == 0 and p.policy == "hash"

    def test_protocol_conformance(self):
        for name in ("hash", "rebalance", "replicate"):
            assert isinstance(make_policy(name), PlacementPolicy)
        with pytest.raises(KeyError):
            make_policy("quantum")


# --------------------------------------------------------------------------- #
class TestLoadAwareRebalance:
    def run_profile(self, g, placement, num_shards=4):
        engine = sharded_engine(g, num_shards, placement=placement)
        return engine.run(g, window_s=86400.0, speedup=5e4, num_streams=4)

    def test_no_profile_degrades_to_hash(self):
        g = skewed_graph()
        heat = VertexHeat.from_graph(g)
        p = LoadAwareRebalance().place(heat, 4)
        assert np.array_equal(p.assignment, hash_assignment(g.num_nodes, 4))
        assert p.moved_vertices == ()

    def test_rebalance_reduces_max_utilization(self):
        """Acceptance: rebalance lowers max per-shard utilization vs hash
        on a skewed synthetic workload."""
        g = skewed_graph()
        heat = VertexHeat.from_graph(g)
        base = StaticHashPlacement().place(heat, 4)
        rep0 = self.run_profile(g, base)
        util0 = [s.utilization for s in rep0.shard_stats]

        policy = LoadAwareRebalance(util_threshold=0.9 * max(util0))
        placed = policy.place(heat, 4, profile=rep0.shard_stats)
        assert len(placed.moved_vertices) > 0
        assert placed.policy == "rebalance"

        rep1 = self.run_profile(g, placed)
        util1 = [s.utilization for s in rep1.shard_stats]
        assert max(util1) < max(util0)
        # Balance improved overall, not just at the top.
        assert np.std(util1) < np.std(util0)
        assert rep1.placement == "rebalance"

    def test_migrations_only_off_overloaded_shards(self):
        g = skewed_graph()
        heat = VertexHeat.from_graph(g)
        base = StaticHashPlacement().place(heat, 4)
        rep0 = self.run_profile(g, base)
        util0 = np.array([s.utilization for s in rep0.shard_stats])
        threshold = 0.9 * util0.max()
        policy = LoadAwareRebalance(util_threshold=threshold)
        placed = policy.place(heat, 4, profile=rep0.shard_stats)
        for v in placed.moved_vertices:
            donor = int(base.assignment[v])
            assert util0[donor] > threshold
            assert placed.assignment[v] != donor

    def test_max_migrations_cap(self):
        g = skewed_graph()
        heat = VertexHeat.from_graph(g)
        rep0 = self.run_profile(g, StaticHashPlacement().place(heat, 4))
        policy = LoadAwareRebalance(
            util_threshold=0.1 * max(s.utilization
                                     for s in rep0.shard_stats),
            max_migrations=2)
        placed = policy.place(heat, 4, profile=rep0.shard_stats)
        assert len(placed.moved_vertices) <= 2

    def test_profile_must_cover_shards(self):
        g = skewed_graph()
        heat = VertexHeat.from_graph(g)
        rep0 = self.run_profile(g, StaticHashPlacement().place(heat, 4))
        with pytest.raises(ValueError):
            LoadAwareRebalance().place(heat, 8, profile=rep0.shard_stats)


# --------------------------------------------------------------------------- #
class TestReplicatedReadMostly:
    def test_selects_read_mostly_high_fanin(self):
        g = skewed_graph()
        heat = VertexHeat.from_graph(g)
        p = ReplicatedReadMostly(top_k=4).place(heat, 4)
        assert p.replicated_vertices == 4
        chosen = sorted(p.replicas, key=lambda v: -heat.dst_count[v])
        # Every chosen vertex is read-mostly and hotter (by fan-in) than
        # any unchosen eligible vertex.
        eligible = np.flatnonzero((heat.read_ratio >= 0.6)
                                  & (heat.dst_count > 0))
        unchosen = [v for v in eligible if v not in p.replicas]
        assert all(heat.read_ratio[v] >= 0.6 for v in chosen)
        if unchosen:
            assert min(heat.dst_count[v] for v in chosen) >= \
                max(heat.dst_count[v] for v in unchosen)
        # Full replication: every other shard holds a copy.
        for v, extra in p.replicas.items():
            assert len(extra) == 3
            assert int(p.assignment[v]) not in extra

    def test_partial_copies(self):
        g = skewed_graph()
        heat = VertexHeat.from_graph(g)
        p = ReplicatedReadMostly(top_k=2, copies=2).place(heat, 4)
        assert all(len(extra) == 1 for extra in p.replicas.values())

    def test_replica_holders_get_every_incident_edge(self):
        g = skewed_graph()
        heat = VertexHeat.from_graph(g)
        p = ReplicatedReadMostly(top_k=2).place(heat, 3)
        router = ShardRouter.from_placement(p)
        hot = list(p.replicas)
        batch = g.slice(0, 400)
        incident = np.isin(batch.src, hot) | np.isin(batch.dst, hot)
        for sb in router.split(batch):
            got = np.isin(batch.eid[incident], sb.batch.eid)
            assert got.all()        # every holder sees every incident edge

    def test_replica_neighbor_rows_are_exact(self):
        """The freshness payoff: a replica's neighbor-table rows for a
        replicated vertex match the unsharded table (no stale mirrors)."""
        g = skewed_graph()
        heat = VertexHeat.from_graph(g)
        p = ReplicatedReadMostly(top_k=2).place(heat, 3)
        router = ShardRouter.from_placement(p)
        mr = 4
        global_table = NeighborTable(g.num_nodes, mr)
        shard_tables = [NeighborTable(g.num_nodes, mr) for _ in range(3)]
        for batch in iter_fixed_size(g, 50):
            global_table.insert_edges(batch.src, batch.dst, batch.eid,
                                      batch.t)
            for sb in router.split(batch):
                shard_tables[sb.shard].insert_edges(
                    sb.batch.src, sb.batch.dst, sb.batch.eid, sb.batch.t)
        for v, extra in p.replicas.items():
            want = global_table.gather(np.array([v]))
            for shard in (int(p.assignment[v]), *extra):
                got = shard_tables[shard].gather(np.array([v]))
                assert np.array_equal(got.mask, want.mask)
                assert np.array_equal(got.nbrs[got.mask],
                                      want.nbrs[want.mask])
                assert np.array_equal(got.times[got.mask],
                                      want.times[want.mask])

    def test_replication_factor_counts_once_per_replica(self):
        """The tested definition: replication_factor = processed / served,
        one count per shard that applies an edge."""
        from repro.graph import TemporalGraph
        # 3 vertices on 3 shards; every edge is v0 -> v1; v1 replicated on
        # every shard => each edge applies on shard(v0) locally + 2 mail
        # copies (owner of v1 + the other replica) = 3 applications.
        n_edges = 12
        g = TemporalGraph(src=np.zeros(n_edges, dtype=np.int64),
                          dst=np.ones(n_edges, dtype=np.int64),
                          t=np.arange(n_edges, dtype=np.float64),
                          num_nodes=3)
        assignment = np.array([0, 1, 2])
        p = Placement(assignment=assignment, num_shards=3,
                      replicas={1: (0, 2)})
        engine = ServingEngine([PerEdgeBackend() for _ in range(3)],
                               g.num_nodes, placement=p)
        rep = engine.run(g, window_s=2.0)
        assert rep.served_edges == n_edges
        assert rep.processed_edges == 3 * n_edges
        assert rep.replication_factor == pytest.approx(3.0)
        assert rep.replicated_vertices == 1
        # Without replication the same stream costs 2 applications/edge
        # (local + the destination owner's mail copy).
        base = ServingEngine([PerEdgeBackend() for _ in range(3)],
                             g.num_nodes,
                             placement=Placement(assignment=assignment,
                                                 num_shards=3))
        rep0 = base.run(g, window_s=2.0)
        assert rep0.replication_factor == pytest.approx(2.0)


# --------------------------------------------------------------------------- #
class TestPoolTopology:
    def test_pool_report_shape(self):
        g = skewed_graph()
        engine = ServingEngine([PerEdgeBackend()], g.num_nodes,
                               topology="pool", pool_servers=4)
        rep = engine.run(g, window_s=86400.0, speedup=1e4, num_streams=4)
        assert rep.topology == "pool"
        assert rep.placement == "none"
        assert len(rep.shard_stats) == 1
        assert rep.shard_stats[0].servers == 4
        assert rep.cross_shard_edges == 0
        # Pool-mode contract: one replica serves each job, so every edge is
        # processed exactly once and the factor is comparable to sharded
        # runs by the same definition.
        assert rep.replication_factor == pytest.approx(1.0)
        assert rep.processed_edges == rep.ingested_edges  # nothing dropped

    def test_pool_beats_sharded_p99_at_low_load(self):
        """Acceptance: with overhead-dominated small windows, the shared
        queue avoids paying the per-batch overhead once per shard per
        window, and pool p99 beats sharded fork-join p99."""
        g = skewed_graph()
        kw = dict(per_edge_s=2e-3, overhead_s=0.05)
        sharded = sharded_engine(g, 4, **kw)
        pool = ServingEngine([PerEdgeBackend(**kw)], g.num_nodes,
                             topology="pool", pool_servers=4)
        run_kw = dict(window_s=3600.0, speedup=3e3, num_streams=4)
        rs = sharded.run(g, **run_kw)
        rp = pool.run(g, **run_kw)
        assert rs.stable and rp.stable          # genuinely low load
        assert rp.p99_response_s < rs.p99_response_s

    def test_sharded_wins_when_marginal_cost_dominates(self):
        """The other side of the crossover: big windows, no overhead —
        fork-join parallelism beats serializing the whole batch."""
        g = skewed_graph()
        kw = dict(per_edge_s=5e-3, overhead_s=0.0)
        sharded = sharded_engine(g, 4, **kw)
        pool = ServingEngine([PerEdgeBackend(**kw)], g.num_nodes,
                             topology="pool", pool_servers=4)
        run_kw = dict(window_s=86400.0 * 5, speedup=1e4, num_streams=2)
        rs = sharded.run(g, **run_kw)
        rp = pool.run(g, **run_kw)
        assert rs.p99_response_s < rp.p99_response_s

    def test_more_replicas_never_hurt(self):
        g = skewed_graph()
        reps = []
        for k in (1, 2, 4):
            eng = ServingEngine([PerEdgeBackend(overhead_s=0.02)],
                                g.num_nodes, topology="pool",
                                pool_servers=k)
            reps.append(eng.run(g, window_s=3600.0, speedup=5e3,
                                num_streams=4))
        waits = [r.shard_stats[0].mean_wait_s for r in reps]
        assert waits[0] >= waits[1] >= waits[2]

    def test_pool_validation(self):
        g = skewed_graph()
        with pytest.raises(ValueError):
            ServingEngine([PerEdgeBackend()], g.num_nodes,
                          topology="ring")
        with pytest.raises(ValueError):
            ServingEngine([PerEdgeBackend()], g.num_nodes,
                          pool_servers=4)       # needs topology="pool"
        with pytest.raises(ValueError):
            ServingEngine([PerEdgeBackend()], g.num_nodes,
                          topology="pool", pool_servers=0)
        with pytest.raises(ValueError):
            ServingEngine.from_registry(["cpu-32t", "gpu"], None, g,
                                        topology="pool")
        with pytest.raises(ValueError):    # replicas are not a shard fleet
            ServingEngine([PerEdgeBackend(), PerEdgeBackend()], g.num_nodes,
                          topology="pool")
        # A pool has no partition; silently ignoring one would misreport.
        heat = VertexHeat.from_graph(g)
        with pytest.raises(ValueError):
            ServingEngine([PerEdgeBackend()], g.num_nodes, topology="pool",
                          placement=StaticHashPlacement().place(heat, 1))
        with pytest.raises(ValueError):
            ServingEngine([PerEdgeBackend()], g.num_nodes, topology="pool",
                          die_of=[0], mail_hop_s=1e-6)


# --------------------------------------------------------------------------- #
class TestTrafficAwareDiePlanning:
    def test_heavy_pair_shares_a_die(self):
        # Shards 0 and 1 exchange almost everything; 2 and 3 the rest.
        traffic = np.array([[0, 90, 1, 1],
                            [80, 0, 1, 1],
                            [1, 1, 0, 40],
                            [1, 1, 30, 0]], dtype=float)
        plan = plan_shard_dies_traffic_aware(traffic, dies=3)
        assert plan[0] == plan[1]
        assert plan[2] == plan[3]
        assert plan[0] != plan[2]               # capacity forces the split
        # Same floorplan rules as the round-robin planner: the middle die
        # keeps the shared front end.
        assert 3 // 2 not in plan

    def test_single_die_and_balance(self):
        traffic = np.ones((4, 4))
        assert plan_shard_dies_traffic_aware(traffic, 1) == [0, 0, 0, 0]
        plan = plan_shard_dies_traffic_aware(traffic, 3)
        counts = {d: plan.count(d) for d in set(plan)}
        assert max(counts.values()) <= 2        # ceil(4/2) per outer die

    def test_no_worse_than_round_robin_on_prediction(self):
        """On the placement's own predicted traffic, the traffic-aware plan
        never crosses more edges than the blind round-robin plan."""
        g = skewed_graph()
        heat = VertexHeat.from_graph(g)
        p = StaticHashPlacement().place(heat, 4)
        traffic = p.mail_matrix(g.src, g.dst)

        def crossings(plan):
            plan = np.asarray(plan)
            return int(traffic[plan[:, None] != plan[None, :]].sum())

        aware = plan_shard_dies_traffic_aware(traffic, dies=3)
        blind = plan_shard_dies(4, 3)
        assert crossings(aware) <= crossings(blind)

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_shard_dies_traffic_aware(np.zeros((2, 3)), 2)
        with pytest.raises(ValueError):
            plan_shard_dies_traffic_aware(np.zeros((2, 2)), 0)
