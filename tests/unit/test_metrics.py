"""Unit tests for AP / AUC metrics against hand-computed references."""

import numpy as np
import pytest

from repro.training import average_precision, roc_auc


class TestAveragePrecision:
    def test_perfect_ranking(self):
        labels = np.array([1, 1, 0, 0])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert average_precision(labels, scores) == pytest.approx(1.0)

    def test_worst_ranking(self):
        labels = np.array([1, 0, 0, 0])
        scores = np.array([0.0, 0.5, 0.6, 0.7])
        assert average_precision(labels, scores) == pytest.approx(0.25)

    def test_known_value(self):
        # Ranking: P N P N -> AP = (1/1)*0.5 + (2/3)*0.5 = 0.8333...
        labels = np.array([1, 0, 1, 0])
        scores = np.array([0.9, 0.8, 0.7, 0.6])
        assert average_precision(labels, scores) == pytest.approx(5.0 / 6.0)

    def test_tied_scores_grouped(self):
        labels = np.array([1, 0])
        scores = np.array([0.5, 0.5])
        # Tie group: precision 0.5 at recall 1.
        assert average_precision(labels, scores) == pytest.approx(0.5)

    def test_no_positives(self):
        assert average_precision(np.zeros(4), np.arange(4.0)) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            average_precision(np.ones(3), np.ones(4))

    def test_matches_sklearn_formula_random(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, 200).astype(float)
        scores = rng.normal(size=200)
        ap = average_precision(labels, scores)
        # Brute-force step integration.
        order = np.argsort(-scores, kind="stable")
        l = labels[order]
        tp = np.cumsum(l)
        prec = tp / np.arange(1, 201)
        ref = (prec * l).sum() / l.sum()
        assert ap == pytest.approx(ref, abs=1e-10)


class TestRocAuc:
    def test_perfect(self):
        assert roc_auc(np.array([1, 1, 0]), np.array([3.0, 2.0, 1.0])) == 1.0

    def test_inverted(self):
        assert roc_auc(np.array([1, 0]), np.array([0.0, 1.0])) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 2, 4000).astype(float)
        scores = rng.normal(size=4000)
        assert abs(roc_auc(labels, scores) - 0.5) < 0.05

    def test_degenerate_single_class(self):
        assert roc_auc(np.ones(5), np.arange(5.0)) == 0.5
        assert roc_auc(np.zeros(5), np.arange(5.0)) == 0.5

    def test_ties_midrank(self):
        labels = np.array([1, 0, 1, 0])
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        assert roc_auc(labels, scores) == pytest.approx(0.5)

    def test_pairwise_probability_interpretation(self):
        rng = np.random.default_rng(2)
        pos = rng.normal(1.0, 1.0, 100)
        neg = rng.normal(0.0, 1.0, 100)
        labels = np.concatenate([np.ones(100), np.zeros(100)])
        scores = np.concatenate([pos, neg])
        auc = roc_auc(labels, scores)
        brute = np.mean(pos[:, None] > neg[None, :]) \
            + 0.5 * np.mean(pos[:, None] == neg[None, :])
        assert auc == pytest.approx(brute, abs=1e-10)
