"""Unit tests for the measured worker-pool serving backend.

Structure vs values: a measured run's *structure* (which jobs land on
which shards, queue depths, drop/served accounting, event order) is
deterministic, while the service-time *values* are wall-clock.  The
tests therefore compare ``ServingReport.to_structure_json()``
projections across worker counts and assert invariants — never exact
timing values — on the ``measured`` block.

``REPRO_WORKERS`` selects the worker-lane count for the engine- and
CLI-driven tests (default 0 = in-process).  CI runs this file a second
time with ``REPRO_WORKERS=4`` so the real process pool is exercised on
every change, not just the in-process fallback.
"""

import json
import os

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.datasets import wikipedia_like
from repro.models import KERNEL_STAGES, ModelConfig, TGNN
from repro.serving import ServingEngine, WorkerPool

WORKERS = int(os.environ.get("REPRO_WORKERS", "0"))

CFG = ModelConfig(memory_dim=8, time_dim=6, embed_dim=8, edge_dim=172,
                  num_neighbors=4, simplified_attention=True,
                  lut_time_encoder=True, lut_bins=8, pruning_budget=2)


@pytest.fixture(scope="module")
def setup():
    g = wikipedia_like(num_edges=400, num_users=60, num_items=16)
    model = TGNN(CFG, rng=np.random.default_rng(0))
    model.calibrate(g)
    model.prepare_inference()
    return g, model


def measured_engine(model, g, *, workers=WORKERS, shards=2, **kwargs):
    return ServingEngine.from_registry("measured", model, g,
                                       num_shards=shards, workers=workers,
                                       **kwargs)


def light_run(engine, g):
    # Low speedup keeps the arrival span dominant, so queue depths stay
    # at zero regardless of how fast this host's kernels happen to be —
    # the precondition for structure identity across worker counts.
    span = float(g.t[-1] - g.t[0])
    return engine.run(g, window_s=span / 20, speedup=50.0)


def run_cli(argv):
    lines = []
    code = cli_main(argv, out=lines.append)
    return code, "\n".join(str(x) for x in lines)


# --------------------------------------------------------------------------- #
# WorkerPool event-time lane model (pure arithmetic, no processes)


class TestWorkerPoolLanes:
    def test_shards_round_robin_onto_lanes(self):
        pool = WorkerPool(2)
        assert [pool.lane_of(s) for s in range(4)] == [0, 1, 0, 1]

    def test_commit_serializes_per_lane(self):
        pool = WorkerPool(2)
        assert pool.commit(0, 0.0, 1.0) == (0.0, 1.0)
        # Shard 1 owns the other lane: no contention.
        assert pool.commit(1, 0.0, 1.0) == (0.0, 1.0)
        # Shard 2 shares lane 0 with shard 0: queues behind its finish.
        assert pool.commit(2, 0.0, 1.0) == (1.0, 2.0)
        # An idle gap: the lane horizon never pulls a start backwards.
        assert pool.commit(0, 5.0, 1.0) == (5.0, 6.0)

    def test_workers_zero_is_one_virtual_lane_per_shard(self):
        pool = WorkerPool(0)
        for s in range(4):
            assert pool.commit(s, 0.0, 1.0) == (0.0, 1.0)
        assert pool.commit(0, 0.0, 1.0) == (1.0, 2.0)

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(-1)


# --------------------------------------------------------------------------- #
# Engine integration


class TestMeasuredEngine:
    def test_measured_block_invariants(self, setup):
        g, model = setup
        report = light_run(measured_engine(model, g), g)
        m = report.measured
        assert m is not None
        assert m["workers"] == WORKERS
        jobs = sum(s.jobs for s in report.shard_stats)
        assert m["samples"] == jobs > 0
        assert sum(p["samples"] for p in m["per_shard"]) == jobs
        assert len(m["per_shard"]) == 2
        assert m["mean_s"] > 0
        assert np.isfinite(m["cv2"]) and m["cv2"] >= 0
        # The registry wires a modeled cost-model companion by default.
        assert m["modeled_mean_s"] is not None and m["modeled_mean_s"] > 0
        assert set(m["stage_seconds"]) <= set(KERNEL_STAGES)
        assert all(v >= 0 for v in m["stage_seconds"].values())

    def test_measured_block_omitted_when_off(self, setup):
        g, model = setup
        engine = ServingEngine.from_registry("cpu-32t", model, g,
                                             num_shards=2,
                                             backend_kwargs={
                                                 "functional": False})
        report = light_run(engine, g)
        assert report.measured is None
        assert "measured" not in report.to_dict()
        assert '"measured"' not in report.to_json()

    def test_structure_identical_across_worker_counts(self, setup):
        g, model = setup
        structures, blocks = [], []
        for workers in (0, 1, 4):
            report = light_run(measured_engine(model, g, workers=workers), g)
            s = json.loads(report.to_structure_json())
            blocks.append(s.pop("measured"))
            structures.append(s)
        assert structures[0] == structures[1] == structures[2]
        # The measured block is the one place worker counts may differ —
        # and only in the lane count and the (nulled) timing floats.
        assert [b["workers"] for b in blocks] == [0, 1, 4]
        assert len({b["samples"] for b in blocks}) == 1
        per_shard = [[p["samples"] for p in b["per_shard"]] for b in blocks]
        assert per_shard[0] == per_shard[1] == per_shard[2]

    def test_measured_requires_sharded_topology(self, setup):
        g, model = setup
        with pytest.raises(ValueError, match="sharded"):
            measured_engine(model, g, topology="pool")

    def test_workers_require_a_measured_backend(self, setup):
        g, model = setup
        with pytest.raises(ValueError, match="workers"):
            ServingEngine.from_registry("cpu-32t", model, g, num_shards=2,
                                        workers=2)


# --------------------------------------------------------------------------- #
# CLI surface (in-process, same idiom as test_cli)


CLI_BASE = ["serve-sim", "--dataset", "wikipedia", "--edges", "300",
            "--shards", "2", "--backend", "measured", "--memory-dim", "8",
            "--workers", str(WORKERS)]


class TestMeasuredCLI:
    def test_check_trace_clean(self):
        code, text = run_cli(CLI_BASE + ["--check-trace"])
        assert code == 0
        assert "trace check: clean" in text
        assert "measured:" in text and "worker lane(s)" in text

    def test_chaos_dead_check_trace_clean(self):
        code, text = run_cli(CLI_BASE + [
            "--edges", "400", "--window-s", "3600", "--speedup", "2000",
            "--fail-at", "300", "--fail-shard", "1", "--fail-mode", "dead",
            "--check-trace"])
        assert code == 0
        assert "trace check: clean" in text
        assert "chaos dead:" in text

    def test_profile_prints_modeled_vs_measured(self):
        code, text = run_cli(CLI_BASE + ["--profile"])
        assert code == 0
        assert "modeled vs measured service time" in text
        assert "modeled/measured" in text
        assert "report structures identical: yes" in text

    def test_workers_on_modeled_backend_is_a_clean_error(self):
        code, text = run_cli(["serve-sim", "--dataset", "wikipedia",
                              "--edges", "300", "--shards", "2",
                              "--backend", "cpu-32t", "--memory-dim", "8",
                              "--workers", "2"])
        assert code == 2
        assert "--workers requires --backend measured" in text

    def test_pool_topology_is_a_clean_error(self):
        code, text = run_cli(CLI_BASE + ["--topology", "pool"])
        assert code == 2
        assert "requires --topology sharded" in text
