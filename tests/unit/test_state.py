"""Unit tests for the vertex state tables (memory + mailbox)."""

import numpy as np

from repro.graph import VertexState
from repro.graph.state import _last_occurrence


class TestVertexState:
    def test_initial_state(self):
        s = VertexState(4, memory_dim=3, raw_message_dim=5)
        assert not s.has_mail(np.array([0, 1])).any()
        mem, mail, mt, lu = s.read(np.array([0]))
        assert mem.shape == (1, 3) and mail.shape == (1, 5)
        assert mt[0] == -np.inf and lu[0] == 0.0

    def test_write_and_read_memory(self):
        s = VertexState(4, 3, 5)
        s.write_memory(np.array([1, 2]), np.arange(6.0).reshape(2, 3),
                       np.array([10.0, 11.0]))
        mem, _, _, lu = s.read(np.array([1, 2]))
        assert np.allclose(mem, [[0, 1, 2], [3, 4, 5]])
        assert np.allclose(lu, [10.0, 11.0])

    def test_duplicate_write_last_wins(self):
        s = VertexState(4, 2, 3)
        vals = np.array([[1.0, 1.0], [2.0, 2.0], [3.0, 3.0]])
        s.write_memory(np.array([1, 1, 1]), vals, np.array([1.0, 2.0, 3.0]))
        mem, _, _, lu = s.read(np.array([1]))
        assert np.allclose(mem[0], [3.0, 3.0])
        assert lu[0] == 3.0

    def test_mailbox_most_recent_aggregator(self):
        s = VertexState(4, 2, 3)
        msgs = np.array([[1.0, 0, 0], [0, 2.0, 0]])
        s.write_mail(np.array([2, 2]), msgs, np.array([5.0, 6.0]))
        _, mail, mt, _ = s.read(np.array([2]))
        assert np.allclose(mail[0], [0, 2.0, 0])
        assert mt[0] == 6.0
        assert s.has_mail(np.array([2]))[0]

    def test_snapshot_restore(self):
        s = VertexState(3, 2, 2)
        s.write_memory(np.array([0]), np.ones((1, 2)), np.array([1.0]))
        snap = s.snapshot()
        s.write_memory(np.array([0]), np.full((1, 2), 9.0), np.array([2.0]))
        s.restore(snap)
        assert np.allclose(s.memory[0], 1.0)
        assert s.last_update[0] == 1.0

    def test_reset(self):
        s = VertexState(3, 2, 2)
        s.write_mail(np.array([1]), np.ones((1, 2)), np.array([4.0]))
        s.reset()
        assert not s.has_mail(np.array([1]))[0]
        assert np.allclose(s.mailbox, 0.0)

    def test_memory_words(self):
        s = VertexState(10, 4, 6)
        assert s.memory_words() == 10 * (4 + 6 + 2)


class TestLastOccurrence:
    def test_unique_all_last(self):
        assert np.array_equal(_last_occurrence(np.array([3, 1, 2])),
                              [True, True, True])

    def test_duplicates(self):
        mask = _last_occurrence(np.array([1, 2, 1, 3, 2]))
        assert np.array_equal(mask, [False, False, True, True, True])

    def test_empty(self):
        assert len(_last_occurrence(np.array([], dtype=int))) == 0
