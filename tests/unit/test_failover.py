"""Failure injection and exact replica failover (ISSUE 7).

Five contracts pin the subsystem:

* **Scheduler cancellation** — :meth:`EventScheduler.cancel` raises on a
  run-scheduled token instead of silently firing the event anyway (the
  bug this PR fixes), both schedulers drop dead entries when they drain,
  and cancellation parity against :class:`HeapEventScheduler` is
  property-tested over randomized programs.
* **Fail-stop semantics** — a dead :class:`ServerGroup` drops queued and
  newly offered jobs *with accounting* (served + dropped == offered), a
  slow one multiplies its service times; conservation holds through the
  outage on the full event loop.
* **Exact failover** — :meth:`ShardRouter.fail_over` promotes replica
  mirrors to owners and rebuilds the rest;
  :meth:`ShardedRuntime.fail_shard` + :meth:`recover_shard` produce
  held-vertex memory tables bit-identical to the unsharded runtime after
  recovery — the headline acceptance.
* **Exactly-once ownership** — the promote / rebuild / fail-back
  :class:`MigrationEvent` chain in the trace is linearizable, exactly
  like the rebalancer's.
* **Stationarity** — a run whose chaos schedule never bites is
  byte-identical to the plain engine (the chaos keys aside), so the
  PR 3-6 golden reports stay pinned.

``REPRO_CHAOS_SEED`` (CI runs a small matrix) varies the workload seed
and the victim shard in the engine-level chaos tests.
"""

import os

import numpy as np
import pytest

from repro.autograd import no_grad
from repro.datasets import wikipedia_like
from repro.graph import iter_fixed_size
from repro.pipeline import LinearCostBackend
from repro.serving import (HANDOFF_ROWS_PER_VERTEX, EventScheduler,
                           FailureInjector, FailurePlan, HeapEventScheduler,
                           MigrationEvent, OnlineRebalancer, Placement,
                           ReplicatedReadMostly, ServerGroup,
                           ServiceBeginEvent, ServiceEndEvent, ServingEngine,
                           ShardRouter, ShardedRuntime, VersionedMemoryCache,
                           VertexHeat, hash_assignment, make_stream_arrivals,
                           replica_shards_from_traffic)
from tests.unit.test_rebalance import (assert_held_state_bit_identical,
                                       drifting_graph, setup_model,
                                       unsharded_reference)

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))


# --------------------------------------------------------------------------- #
class TestFailurePlanValidation:
    def test_mode_must_be_known(self):
        with pytest.raises(ValueError, match="mode"):
            FailurePlan(fail_at=1.0, shard=0, mode="flaky")

    def test_shard_must_be_non_negative(self):
        with pytest.raises(ValueError):
            FailurePlan(fail_at=1.0, shard=-1)

    def test_fail_time_must_be_finite(self):
        with pytest.raises(ValueError):
            FailurePlan(fail_at=float("inf"), shard=0)

    def test_recovery_must_follow_failure(self):
        with pytest.raises(ValueError):
            FailurePlan(fail_at=2.0, shard=0, recover_at=2.0)

    def test_slow_needs_real_degradation(self):
        with pytest.raises(ValueError):
            FailurePlan(fail_at=1.0, shard=0, mode="slow", degradation=1.0)
        FailurePlan(fail_at=1.0, shard=0, mode="slow", degradation=1.5)

    def test_injector_needs_plans(self):
        with pytest.raises(ValueError):
            FailureInjector([])
        with pytest.raises(TypeError):
            FailureInjector([object()])

    def test_injector_chaos_tag(self):
        one = FailureInjector(FailurePlan(fail_at=1.0, shard=0))
        assert one.chaos == "dead"
        mixed = FailureInjector([
            FailurePlan(fail_at=1.0, shard=0),
            FailurePlan(fail_at=2.0, shard=1, mode="slow")])
        assert mixed.chaos == "mixed"

    def test_bind_validates_fleet(self):
        inj = FailureInjector(FailurePlan(fail_at=1.0, shard=3))
        sched = EventScheduler()
        groups = [ServerGroup(i, 1, lambda p: 1.0, sched) for i in range(2)]
        with pytest.raises(ValueError, match="out of range"):
            inj.bind(sched, groups, ShardRouter(2, 8))
        lone = FailureInjector(FailurePlan(fail_at=1.0, shard=0))
        with pytest.raises(ValueError, match="survivor"):
            lone.bind(sched, groups[:1], ShardRouter(2, 8))


# --------------------------------------------------------------------------- #
class TestSchedulerCancel:
    """Satellite: run-token cancel raises; dead sets drain; heap parity."""

    def test_run_token_cancel_raises(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(0.0, 0, "point", fired.append)     # token 0
        ts = np.array([1.0, 2.0, 3.0])

        def cohort(t0, payloads, start, stop):
            fired.extend(payloads[start:stop])
            return stop - start

        sched.schedule_run(ts, 0, ["a", "b", "c"], cohort)  # tokens 1..3
        for token in (1, 2, 3):
            with pytest.raises(ValueError, match="run"):
                sched.cancel(token)
        # The refusal is a no-op: nothing was marked dead, all fire.
        sched.cancel(0)
        sched.run()
        assert fired == ["a", "b", "c"]

    @pytest.mark.parametrize("cls", [HeapEventScheduler, EventScheduler])
    def test_dead_set_drains(self, cls):
        sched = cls()
        tokens = []

        def on_fire(_ev):
            # Cancelling an already-fired token never meets the pop-time
            # discard; the drain sweep must still clear it.
            sched.cancel(tokens[0])

        tokens.append(sched.schedule(1.0, 0, None, on_fire))
        sched.run()
        assert sched._dead == set()

    def _program(self, rng):
        """Points and runs with integer-grid ties (see test_events)."""
        ops, tag = [], 0
        for _ in range(int(rng.integers(3, 9))):
            base = float(rng.integers(0, 6))
            prio = int(rng.integers(0, 3))
            if rng.random() < 0.5:
                ops.append(("point", base, prio, tag))
                tag += 1
            else:
                n = int(rng.integers(1, 10))
                ts = base + np.cumsum(
                    rng.integers(0, 2, size=n).astype(np.float64))
                ops.append(("run", ts, prio, list(range(tag, tag + n))))
                tag += n
        return ops

    def _drive(self, sched, ops, cancels, vectorized):
        fired = []

        def on_point(ev):
            fired.append(ev)

        def on_cohort(t0, payloads, start, stop):
            fired.extend(payloads[start:stop])
            return stop - start

        # Identical schedule-call order makes the token streams line up:
        # schedule_run consumes one seq per element, exactly like the heap
        # lane's element-by-element expansion.
        point_tokens = {}
        for op in ops:
            if op[0] == "point":
                _, t, prio, tag = op
                point_tokens[tag] = sched.schedule(t, prio, (t, prio, tag),
                                                   on_point)
            elif vectorized:
                _, ts, prio, tags = op
                payloads = [(float(t), prio, g) for t, g in zip(ts, tags)]
                sched.schedule_run(ts, prio, payloads, on_cohort)
            else:
                _, ts, prio, tags = op
                for t, g in zip(ts, tags):
                    sched.schedule(float(t), prio, (float(t), prio, g),
                                   on_point)
        for tag in cancels:
            sched.cancel(point_tokens[tag])
        sched.run()
        return fired

    def test_cancel_parity_with_heap_oracle(self):
        for trial in range(40):
            rng = np.random.default_rng(9300 + trial)
            ops = self._program(rng)
            point_tags = [op[3] for op in ops if op[0] == "point"]
            cancels = [g for g in point_tags if rng.random() < 0.5]
            heap = HeapEventScheduler()
            vec = EventScheduler()
            heap_fired = self._drive(heap, ops, cancels, vectorized=False)
            vec_fired = self._drive(vec, ops, cancels, vectorized=True)
            assert vec_fired == heap_fired
            assert not any(ev[2] in cancels for ev in vec_fired)
            assert vec.events_processed == heap.events_processed
            assert heap._dead == set() and vec._dead == set()


# --------------------------------------------------------------------------- #
class TestServerGroupFailure:
    def _drain(self, sched):
        sched.run()

    def test_slow_failure_scales_service_times(self):
        sched = EventScheduler()
        group = ServerGroup(0, 1, lambda p: 1.0, sched)
        group.submit(0.0, "before")
        group.service_factor = 4.0
        group.submit(0.0, "during")
        self._drain(sched)
        res = group.finalize()
        assert [j.service_s for j in res.served] == [1.0, 4.0]

    def test_dead_group_drops_with_accounting(self):
        sched = EventScheduler()
        group = ServerGroup(0, 1, lambda p: 1.0, sched)
        group.submit(0.0, "served")     # in service immediately
        group.submit(0.0, "queued")
        dropped_now = group.fail()
        assert dropped_now == 1         # the queued job
        group.submit(0.5, "refused")    # offered to a dead shard
        self._drain(sched)
        res = group.finalize()
        # Conservation: served + dropped == offered, in-service completes.
        assert len(res.served) == 1 and res.served[0].index == 0
        assert set(res.dropped_indices) == {1, 2}

    def test_restore_resets_both_failure_modes(self):
        sched = EventScheduler()
        group = ServerGroup(0, 1, lambda p: 1.0, sched)
        group.service_factor = 8.0
        group.fail()
        group.restore()
        assert group.accepting and group.service_factor == 1.0
        group.submit(0.0, "after")
        self._drain(sched)
        assert group.finalize().served[0].service_s == 1.0


# --------------------------------------------------------------------------- #
class TestRouterFailOver:
    def _replicated_router(self):
        assignment = np.array([0, 1, 1, 2, 0, 1], dtype=np.int64)
        placement = Placement(assignment=assignment, num_shards=3,
                              replicas={1: (0, 2), 2: (2,)},
                              policy="replicate")
        return ShardRouter.from_placement(placement)

    def test_promotes_lowest_replica_and_rebuilds_rest(self):
        router = self._replicated_router()
        promoted, rebuilt = router.fail_over(1)
        assert sorted(promoted.tolist()) == [1, 2]
        assert rebuilt.tolist() == [5]
        # Promotion: lowest surviving replica becomes owner, the rest of
        # the set stays (vertex 1: owner 0, replica {2} remains).
        assert router.assignment[1] == 0
        assert router.placement.replicas[1] == (2,)
        # A consumed set disappears (vertex 2 promoted its only copy).
        assert router.assignment[2] == 2
        assert 2 not in router.placement.replicas
        # Rebuilt: deterministic survivor, membership moved.
        assert router.assignment[5] == [0, 2][5 % 2]
        assert not router._member[1].any()
        assert (router.assignment != 1).all()

    def test_dead_shard_leaves_every_replica_set(self):
        assignment = np.zeros(4, dtype=np.int64)
        placement = Placement(assignment=assignment, num_shards=3,
                              replicas={0: (1, 2), 3: (1,)},
                              policy="replicate")
        router = ShardRouter.from_placement(placement)
        promoted, rebuilt = router.fail_over(1)
        assert len(promoted) == 0 and len(rebuilt) == 0
        assert router.placement.replicas == {0: (2,)}
        assert not router._member[1].any()

    def test_fail_over_validation(self):
        with pytest.raises(ValueError, match="only shard"):
            ShardRouter(1, 4).fail_over(0)
        with pytest.raises(ValueError):
            ShardRouter(2, 4).fail_over(2)


class TestCacheFailOver:
    def _cache(self, replicas=None):
        assignment = np.array([0, 1, 1, 0], dtype=np.int64)
        placement = Placement(assignment=assignment, num_shards=2,
                              replicas=replicas or {}, policy="hash")
        return VersionedMemoryCache(placement, policy="push")

    def test_dead_row_is_scrubbed_and_rebuilt_owner_is_current(self):
        cache = self._cache()
        cache.note_writes(np.array([1, 2]), range(2))
        cache.fail_over(1, np.array([1, 2]), np.array([0, 0]))
        assert not cache._holder[1].any() and not cache._mirror[1].any()
        assert (cache.mirror_version[1] == 0).all()
        assert cache._holder[0, [1, 2]].all()
        assert (cache.mirror_version[0, [1, 2]] ==
                cache.version[[1, 2]]).all()

    def test_keep_holder_demotes_into_replica_set(self):
        cache = self._cache()
        v = np.array([1, 2])
        cache.transfer_ownership(v, np.array([1, 1]), 0,
                                 keep_holder=np.array([True, False]))
        # Kept old owner stays a holder; dropped one ages as a mirror.
        assert cache._holder[1, 1] and not cache._mirror[1, 1]
        assert not cache._holder[1, 2] and cache._mirror[1, 2]
        assert cache._holder[0, v].all()


# --------------------------------------------------------------------------- #
def bipartite_placement(g, num_users, item_shard, user_shards):
    """Users spread over ``user_shards``, every item on ``item_shard``:
    each edge crosses shards, so under ``push`` every written item keeps a
    current mirror on a user shard — the workload shape where rebuild can
    certify ``cold == 0``."""
    ids = np.arange(g.num_nodes)
    user_shards = np.asarray(user_shards, dtype=np.int64)
    assignment = np.where(ids < num_users,
                          user_shards[ids % len(user_shards)],
                          item_shard).astype(np.int64)
    num_shards = max(item_shard, *user_shards) + 1
    return Placement(assignment=assignment, num_shards=num_shards,
                     policy="hash")


class TestShardedRuntimeFailover:
    """The headline acceptance: failover loses nothing, bit-for-bit."""

    def test_promotion_failover_is_bit_identical(self):
        """Every dead-owned vertex has a full replica: failover is pure
        promotion (zero state moved), and the post-recovery run matches
        the unsharded runtime exactly."""
        g, model = setup_model()
        rt, _ = unsharded_reference(model, g)
        assignment = hash_assignment(g.num_nodes, 2)
        replicated = [int(v) for v in np.flatnonzero(assignment == 1)]
        placement = Placement(assignment=assignment, num_shards=2,
                              replicas={v: (0,) for v in replicated},
                              policy="replicate")
        srt = ShardedRuntime(model, g, placement=placement, policy="push")
        with no_grad():
            for i, batch in enumerate(iter_fixed_size(g, 50)):
                if i == 4:
                    info = srt.fail_shard(1)
                    assert info["rebuilt"] == 0 and info["cold"] == 0
                    assert info["promoted"] == len(replicated)
                    assert len(srt.held_vertices(1)) == 0
                if i == 8:
                    assert srt.recover_shard(1) == len(replicated)
                    assert (srt.router.assignment[replicated] == 1).all()
                srt.process_batch(batch)
        assert_held_state_bit_identical(srt, rt)

    def test_rebuild_failover_is_bit_identical(self):
        """No replicas at all: every lost vertex is rebuilt from peers
        (memory rows from the lowest current mirror, FIFO ring replayed
        from the durable edge log) — still bit-identical once recovered,
        and nothing was cold."""
        g, model = setup_model()
        rt, _ = unsharded_reference(model, g)
        placement = bipartite_placement(g, 80, item_shard=1,
                                        user_shards=[0])
        srt = ShardedRuntime(model, g, placement=placement, policy="push")
        with no_grad():
            for i, batch in enumerate(iter_fixed_size(g, 50)):
                if i == 6:
                    owned = np.flatnonzero(srt.router.assignment == 1)
                    info = srt.fail_shard(1)
                    assert info["promoted"] == 0
                    assert info["rebuilt"] == len(owned)
                    # The certificate the exactness below relies on: every
                    # written vertex had a surviving current copy.
                    assert info["cold"] == 0
                    assert info["rows"] > 0
                if i == 9:
                    srt.recover_shard(1)
                srt.process_batch(batch)
        assert_held_state_bit_identical(srt, rt)

    def test_unrecovered_failover_is_bit_identical(self):
        """Exactness does not wait for recovery: the promoted/rebuilt
        owners serve exact rows for the rest of the run."""
        g, model = setup_model()
        rt, _ = unsharded_reference(model, g)
        placement = bipartite_placement(g, 80, item_shard=2,
                                        user_shards=[0, 1])
        srt = ShardedRuntime(model, g, placement=placement, policy="push")
        with no_grad():
            for i, batch in enumerate(iter_fixed_size(g, 50)):
                if i == 6:
                    info = srt.fail_shard(2)
                    assert info["cold"] == 0
                srt.process_batch(batch)
        assert len(srt.held_vertices(2)) == 0
        assert_held_state_bit_identical(srt, rt)

    def test_double_failure_and_bad_recovery_raise(self):
        g, model = setup_model()
        srt = ShardedRuntime(model, g, num_shards=2, policy="push")
        srt.fail_shard(1)
        with pytest.raises(ValueError, match="already failed"):
            srt.fail_shard(1)
        with pytest.raises(ValueError, match="not failed"):
            srt.recover_shard(0)

    def test_rebuild_prices_handoff_rows_in_mailbox(self):
        g, model = setup_model()
        placement = bipartite_placement(g, 80, item_shard=1,
                                        user_shards=[0])
        srt = ShardedRuntime(model, g, placement=placement, policy="push")
        with no_grad():
            for i, batch in enumerate(iter_fixed_size(g, 50)):
                srt.process_batch(batch)
                if i == 5:
                    break
        owned = np.flatnonzero(srt.router.assignment == 1)
        # Never-written vertices rebuild as zero-init for free; every
        # written one costs the fixed per-vertex handoff.
        warm = int((srt.cache.version[owned] > 0).sum())
        before = srt.mailbox.total_sync_rows
        info = srt.fail_shard(1)
        assert srt.mailbox.total_sync_rows - before == info["rows"]
        assert info["cold"] == 0
        assert info["rows"] == HANDOFF_ROWS_PER_VERTEX * warm > 0


# --------------------------------------------------------------------------- #
def run_chaos(g, plans, shards=4, window_s=250.0, speedup=2400.0,
              streams=2, queue_capacity=None, memsync="push"):
    engine = ServingEngine(
        [LinearCostBackend(per_edge_s=6e-3) for _ in range(shards)],
        g.num_nodes, memsync=memsync, failures=plans)
    initial = engine.router.assignment.copy()
    arrivals = make_stream_arrivals(g, window_s, num_streams=streams,
                                    speedup=speedup)
    rep = engine._run_events(arrivals, window_s, speedup, streams,
                             queue_capacity, "serial", trace=True)
    return engine, initial, arrivals, rep


class TestEngineChaosInvariants:
    """Conservation + exactly-once ownership on the full event loop."""

    SHARDS = 4

    def _plan(self, fail_at=0.4, recover_at=0.9, mode="dead"):
        return FailurePlan(fail_at=fail_at, shard=CHAOS_SEED % self.SHARDS,
                           mode=mode, recover_at=recover_at)

    def test_ownership_chain_through_promotion(self):
        g = drifting_graph(seed=5 + CHAOS_SEED)
        engine, initial, _, rep = run_chaos(g, self._plan(),
                                            shards=self.SHARDS)
        assert rep.chaos == "dead"
        assert rep.failures == 1 and rep.recoveries == 1
        trace = engine.last_event_trace
        moves = [e for e in trace if isinstance(e, MigrationEvent)]
        assert {e.reason for e in moves} <= {"promote", "rebuild",
                                             "fail-back"}
        assert rep.rebuilt_vertices > 0
        assert rep.recovery_rows > 0
        # Replay the log: each handoff consumes the previous owner, so no
        # vertex is ever owned by two shards — across the failover too.
        owner = initial.copy()
        for ev in moves:
            assert owner[ev.vertex] == ev.from_shard
            assert ev.from_shard != ev.to_shard
            expected = 0 if ev.reason == "promote" \
                else HANDOFF_ROWS_PER_VERTEX
            assert ev.rows == expected
            owner[ev.vertex] = ev.to_shard
        assert np.array_equal(owner, engine.router.assignment)
        assert (engine.router._member.sum(axis=0) >= 1).all()
        ts = [e.t for e in trace]
        assert all(a <= b for a, b in zip(ts, ts[1:]))

    def test_no_lost_or_duplicated_jobs_across_failover(self):
        g = drifting_graph(seed=5 + CHAOS_SEED)
        engine, _, arrivals, rep = run_chaos(g, self._plan(),
                                             shards=self.SHARDS)
        # Window conservation: every offered window is served or dropped.
        assert rep.windows + rep.dropped_windows == len(arrivals)
        trace = engine.last_event_trace
        begins = [e for e in trace if isinstance(e, ServiceBeginEvent)]
        ends = [e for e in trace if isinstance(e, ServiceEndEvent)]
        assert len(begins) == len(ends)
        assert len({(e.group, e.index) for e in begins}) == len(begins)
        assert len({(e.group, e.index) for e in ends}) == len(ends)
        spans = {}
        for b in begins:
            spans[(b.group, b.index)] = [b.t, None]
        for e in ends:
            spans[(e.group, e.index)][1] = e.t
        by_server = {}
        for b in begins:
            by_server.setdefault((b.group, b.server), []).append(
                spans[(b.group, b.index)])
        for intervals in by_server.values():
            intervals.sort()
            for (b0, e0), (b1, _) in zip(intervals, intervals[1:]):
                assert e0 is not None and b1 >= e0 - 1e-12

    def test_outage_window_is_reported(self):
        g = drifting_graph(seed=5 + CHAOS_SEED)
        _, _, _, rep = run_chaos(g, self._plan(fail_at=0.2, recover_at=0.8),
                                 shards=self.SHARDS)
        assert rep.outage_windows > 0
        assert rep.outage_p99_response_s > 0.0
        d = rep.to_dict()
        assert d["chaos"] == "dead" and d["outage_windows"] > 0

    def test_slow_mode_degrades_then_restores(self):
        g = drifting_graph(seed=5 + CHAOS_SEED)
        plan = self._plan(mode="slow")
        _, _, _, slow = run_chaos(g, plan, shards=self.SHARDS)
        _, _, _, base = run_chaos(
            g, self._plan(mode="slow", fail_at=1e9, recover_at=2e9),
            shards=self.SHARDS)
        assert slow.chaos == "slow"
        assert slow.promoted_vertices == slow.rebuilt_vertices == 0
        victim = plan.shard
        assert slow.shard_stats[victim].busy_s > \
            base.shard_stats[victim].busy_s

    def test_no_bite_chaos_is_identical_to_plain_engine(self):
        """A schedule that never bites (fires after the horizon) leaves
        every statistic byte-identical to the plain engine — chaos keys
        aside — so the PR 3-6 goldens stay pinned."""
        g = wikipedia_like(num_edges=600, num_users=80, num_items=20)

        def run(failures):
            engine = ServingEngine(
                [LinearCostBackend(per_edge_s=1e-3) for _ in range(4)],
                g.num_nodes, memsync="push", failures=failures)
            return engine.run(g, window_s=3600.0, speedup=2.0,
                              num_streams=2)

        base = run(None)
        late = run(FailurePlan(fail_at=1e9, shard=1, recover_at=1e9 + 1.0))
        assert late.failures == 1 and late.recoveries == 1
        d_base, d_late = base.to_dict(), late.to_dict()
        assert "chaos" not in d_base
        for key in ("chaos", "failures", "recoveries", "promoted_vertices",
                    "rebuilt_vertices", "recovery_rows", "outage_windows",
                    "outage_p99_response_s"):
            d_late.pop(key)
        assert d_late == d_base

    def test_pool_topology_rejects_failures(self):
        g = wikipedia_like(num_edges=100, num_users=20, num_items=5)
        with pytest.raises(ValueError, match="pool"):
            ServingEngine([LinearCostBackend()], g.num_nodes,
                          topology="pool",
                          failures=FailurePlan(fail_at=1.0, shard=0))

    def test_rebalancer_and_failures_are_mutually_exclusive(self):
        g = wikipedia_like(num_edges=100, num_users=20, num_items=5)
        with pytest.raises(ValueError, match="together"):
            ServingEngine(
                [LinearCostBackend() for _ in range(2)], g.num_nodes,
                rebalancer=OnlineRebalancer(window_s=1.0),
                failures=FailurePlan(fail_at=1.0, shard=0))

    def test_recovery_rows_priced_across_dies(self):
        """Recovery traffic crossing a die boundary inflates the new
        owner's busy time — failover is never free on a multi-die part."""
        g = drifting_graph(seed=5 + CHAOS_SEED)

        def run(mail_hop_s):
            engine = ServingEngine(
                [LinearCostBackend(per_edge_s=6e-3) for _ in range(4)],
                g.num_nodes, memsync="push", die_of=[0, 1, 0, 1],
                mail_hop_s=mail_hop_s, failures=self._plan())
            return engine.run(g, window_s=250.0, speedup=2400.0,
                              num_streams=2)

        free = run(0.0)
        priced = run(5e-4)
        assert priced.recovery_rows == free.recovery_rows > 0
        assert sum(s.busy_s for s in priced.shard_stats) > \
            sum(s.busy_s for s in free.shard_stats)


# --------------------------------------------------------------------------- #
class TestProfileDrivenReplicas:
    """Satellite: replica sets chosen from the measured traffic matrix,
    cooled vertices de-replicated on refresh."""

    def test_traffic_ranking_is_deterministic(self):
        traffic = np.array([[0, 5, 9, 5],
                            [1, 0, 2, 3],
                            [4, 4, 0, 4],
                            [7, 1, 2, 0]])
        assert replica_shards_from_traffic(traffic, 0, 2) == (2, 1)
        assert replica_shards_from_traffic(traffic, 0, 3) == (2, 1, 3)
        # Ties break by shard id ascending; zero n_extra picks nothing.
        assert replica_shards_from_traffic(traffic, 2, 2) == (0, 1)
        assert replica_shards_from_traffic(traffic, 0, 0) == ()

    def test_traffic_validation(self):
        with pytest.raises(ValueError, match="square"):
            replica_shards_from_traffic(np.zeros((2, 3)), 0, 1)
        with pytest.raises(ValueError, match="owner"):
            replica_shards_from_traffic(np.zeros((2, 2)), 2, 1)

    def test_place_uses_measured_traffic(self):
        g = wikipedia_like(num_edges=400, num_users=60, num_items=16)
        heat = VertexHeat.from_graph(g)
        policy = ReplicatedReadMostly(top_k=4, copies=2)
        traffic = np.array([[0, 1, 9],
                            [9, 0, 1],
                            [1, 9, 0]])
        placed = policy.place(heat, 3, traffic=traffic)
        assert placed.replicated_vertices > 0
        for v, extra in placed.replicas.items():
            owner = int(placed.assignment[v])
            assert extra == replica_shards_from_traffic(traffic, owner, 1)

    def test_refresh_de_replicates_cooled_vertices(self):
        g = wikipedia_like(num_edges=400, num_users=60, num_items=16)
        heat = VertexHeat.from_graph(g)
        policy = ReplicatedReadMostly(top_k=4)
        placed = policy.place(heat, 2)
        assert placed.replicated_vertices == 4
        # The measured second-epoch heat: everything cooled except the
        # single hottest vertex, which keeps its copies.
        hot = max(placed.replicas, key=lambda v: heat.dst_count[v])
        cold_src = np.zeros_like(heat.src_count)
        cold_dst = np.zeros_like(heat.dst_count)
        cold_dst[hot] = 10
        refreshed = policy.refresh(
            placed, VertexHeat(src_count=cold_src, dst_count=cold_dst))
        assert list(refreshed.replicas) == [hot]
        assert np.array_equal(refreshed.assignment, placed.assignment)
        # The input placement was not mutated.
        assert placed.replicated_vertices == 4

    def test_refresh_validates_vertex_count(self):
        g = wikipedia_like(num_edges=400, num_users=60, num_items=16)
        heat = VertexHeat.from_graph(g)
        policy = ReplicatedReadMostly(top_k=4)
        placed = policy.place(heat, 2)
        bad = VertexHeat(src_count=np.zeros(3), dst_count=np.zeros(3))
        with pytest.raises(ValueError, match="vertex count"):
            policy.refresh(placed, bad)
