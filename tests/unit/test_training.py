"""Unit tests for the self-supervised trainer and knowledge distillation."""

import numpy as np
import pytest

from repro.datasets import wikipedia_like
from repro.models import ModelConfig, TGNN
from repro.training import (DistillationConfig, DistillationTrainer,
                            TrainConfig, Trainer, attention_agreement)

CFG = ModelConfig(memory_dim=10, time_dim=8, embed_dim=10, edge_dim=172,
                  num_neighbors=4)


def stream(n=400):
    return wikipedia_like(num_edges=n, num_users=60, num_items=15)


class TestTrainer:
    def test_loss_decreases(self):
        g = stream()
        model = TGNN(CFG, rng=np.random.default_rng(0))
        tr = Trainer(model, g, TrainConfig(epochs=3, batch_size=50, seed=0))
        hist = tr.train(train_end=280)
        assert len(hist) == 3
        assert hist[-1]["loss"] < hist[0]["loss"]

    def test_evaluate_beats_chance_after_training(self):
        g = stream(600)
        model = TGNN(CFG, rng=np.random.default_rng(0))
        tr = Trainer(model, g, TrainConfig(epochs=3, batch_size=50, seed=0))
        tr.train(train_end=420)
        res = tr.evaluate(start=420, end=600)
        assert res.ap > 0.55       # random scoring gives ~0.5
        assert res.n_edges == 180

    def test_evaluate_deterministic(self):
        g = stream()
        model = TGNN(CFG, rng=np.random.default_rng(0))
        tr = Trainer(model, g, TrainConfig(epochs=1, batch_size=50, seed=0))
        tr.train(train_end=280)
        a = tr.evaluate(280, 400)
        b = tr.evaluate(280, 400)
        assert a.ap == b.ap and a.auc == b.auc

    def test_epoch_resets_state(self):
        g = stream()
        model = TGNN(CFG, rng=np.random.default_rng(0))
        tr = Trainer(model, g, TrainConfig(epochs=2, batch_size=50, seed=0))
        tr.train(train_end=100)  # two epochs must both run from clean state
        assert len(tr.history) == 2


class TestDistillation:
    def _pair(self, g):
        teacher = TGNN(CFG, rng=np.random.default_rng(0))
        student_cfg = CFG.with_(simplified_attention=True, name="+SAT")
        student = TGNN(student_cfg, rng=np.random.default_rng(1))
        return teacher, student

    def test_rejects_mismatched_students(self):
        g = stream(100)
        teacher, _ = self._pair(g)
        bad = TGNN(CFG, rng=np.random.default_rng(2))  # not simplified
        with pytest.raises(ValueError):
            DistillationTrainer(teacher, bad, g)
        other_k = TGNN(CFG.with_(num_neighbors=6, simplified_attention=True),
                       rng=np.random.default_rng(3))
        with pytest.raises(ValueError):
            DistillationTrainer(teacher, other_k, g)

    def test_agreement_improves(self):
        g = stream(500)
        teacher, student = self._pair(g)
        # Give the teacher some training so its logits are meaningful.
        Trainer(teacher, g, TrainConfig(epochs=2, batch_size=50,
                                        seed=0)).train(350)
        dt = DistillationTrainer(teacher, student, g,
                                 DistillationConfig(epochs=4, batch_size=50,
                                                    kd_weight=4.0, seed=0))
        hist = dt.train(train_end=350)
        assert hist[-1]["top1_agreement"] > hist[0]["top1_agreement"]
        assert hist[-1]["kd_loss"] < hist[0]["kd_loss"]

    def test_teacher_parameters_frozen(self):
        g = stream(200)
        teacher, student = self._pair(g)
        before = {n: p.data.copy() for n, p in teacher.named_parameters()}
        dt = DistillationTrainer(teacher, student, g,
                                 DistillationConfig(epochs=1, batch_size=50,
                                                    seed=0))
        dt.train(train_end=150)
        for n, p in teacher.named_parameters():
            assert np.array_equal(before[n], p.data), n

    def test_as_trainer_evaluation(self):
        g = stream(300)
        teacher, student = self._pair(g)
        dt = DistillationTrainer(teacher, student, g,
                                 DistillationConfig(epochs=1, batch_size=50,
                                                    seed=0))
        dt.train(train_end=200)
        res = dt.as_trainer().evaluate(200, 300)
        assert 0.0 <= res.ap <= 1.0


class TestAttentionAgreement:
    def test_perfect_agreement(self):
        logits = np.array([[3.0, 1.0, 2.0]])
        mask = np.ones((1, 3), dtype=bool)
        assert attention_agreement(logits, logits, mask) == 1.0

    def test_disagreement(self):
        a = np.array([[3.0, 1.0]])
        b = np.array([[1.0, 3.0]])
        mask = np.ones((1, 2), dtype=bool)
        assert attention_agreement(a, b, mask) == 0.0

    def test_short_rows_skipped(self):
        a = np.array([[3.0, 1.0], [9.0, 0.0]])
        b = np.array([[1.0, 3.0], [0.0, 9.0]])
        mask = np.array([[True, False], [True, True]])
        assert attention_agreement(a, b, mask) == 0.0  # only row 2 counted

    def test_all_rows_short(self):
        mask = np.array([[True, False]])
        assert attention_agreement(np.ones((1, 2)), np.ones((1, 2)), mask) == 1.0
