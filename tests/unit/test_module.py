"""Unit tests for the module system: registration, Linear, GRUCell, MLP."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.autograd.module import GRUCell, Linear, MLP, Module, Parameter, Sequential


class TestRegistration:
    def test_parameters_recursive(self):
        mlp = MLP(4, 8, 2)
        names = dict(mlp.named_parameters())
        assert set(names) == {"fc1.weight", "fc1.bias",
                              "fc2.weight", "fc2.bias"}
        assert mlp.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_zero_grad(self):
        lin = Linear(3, 2)
        (lin(Tensor(np.ones((1, 3)))) ** 2).sum().backward()
        assert lin.weight.grad is not None
        lin.zero_grad()
        assert lin.weight.grad is None

    def test_state_dict_roundtrip(self):
        a, b = Linear(3, 2), Linear(3, 2, rng=np.random.default_rng(9))
        assert not np.allclose(a.weight.data, b.weight.data)
        b.load_state_dict(a.state_dict())
        assert np.allclose(a.weight.data, b.weight.data)

    def test_state_dict_mismatch_raises(self):
        a = Linear(3, 2)
        with pytest.raises(KeyError):
            a.load_state_dict({"weight": np.zeros((2, 3))})
        sd = a.state_dict()
        sd["weight"] = np.zeros((5, 5))
        with pytest.raises(ValueError):
            a.load_state_dict(sd)

    def test_parameter_trainable_even_under_no_grad(self):
        from repro.autograd import no_grad
        with no_grad():
            p = Parameter(np.ones(3))
        assert p.requires_grad


class TestLinear:
    def test_affine_values(self):
        lin = Linear(3, 2)
        x = np.random.default_rng(0).normal(size=(4, 3))
        got = lin(Tensor(x)).data
        ref = x @ lin.weight.data.T + lin.bias.data
        assert np.allclose(got, ref)

    def test_linear_3d_input(self):
        lin = Linear(3, 2)
        x = np.random.default_rng(1).normal(size=(4, 5, 3))
        assert lin(Tensor(x)).shape == (4, 5, 2)

    def test_no_bias(self):
        lin = Linear(3, 2, bias=False)
        assert lin.bias is None
        assert lin(Tensor(np.zeros((1, 3)))).data.sum() == 0.0

    def test_gradcheck(self):
        lin = Linear(3, 2, rng=np.random.default_rng(2))
        x = Tensor(np.random.default_rng(3).normal(size=(4, 3)))
        check_gradients(lambda w, b: ((x @ w.T + b) ** 2).sum(),
                        [lin.weight, lin.bias])


class TestGRUCell:
    def test_shapes(self):
        gru = GRUCell(6, 4)
        m = Tensor(np.zeros((5, 6)))
        s = Tensor(np.zeros((5, 4)))
        assert gru(m, s).shape == (5, 4)

    def test_zero_input_keeps_interpolation_bounds(self):
        # s' is a convex combination of candidate (tanh in [-1,1]) and s.
        gru = GRUCell(3, 4, rng=np.random.default_rng(0))
        s = np.random.default_rng(1).uniform(-1, 1, size=(10, 4))
        out = gru(Tensor(np.zeros((10, 3))), Tensor(s)).data
        assert np.all(out <= np.maximum(np.abs(s), 1.0) + 1e-9)

    def test_matches_manual_reference(self):
        gru = GRUCell(3, 2, rng=np.random.default_rng(4))
        m = np.random.default_rng(5).normal(size=(4, 3))
        s = np.random.default_rng(6).normal(size=(4, 2))
        got = gru(Tensor(m), Tensor(s)).data

        def sig(x):
            return 1.0 / (1.0 + np.exp(-x))
        gi = m @ gru.weight_ih.data.T + gru.bias_ih.data
        gh = s @ gru.weight_hh.data.T + gru.bias_hh.data
        r = sig(gi[:, 0:2] + gh[:, 0:2])
        z = sig(gi[:, 2:4] + gh[:, 2:4])
        n = np.tanh(gi[:, 4:6] + r * gh[:, 4:6])
        assert np.allclose(got, (1 - z) * n + z * s, atol=1e-12)

    def test_gradients_flow_to_all_parameters(self):
        gru = GRUCell(3, 2, rng=np.random.default_rng(7))
        out = gru(Tensor(np.ones((2, 3))), Tensor(np.ones((2, 2))))
        (out ** 2).sum().backward()
        for name, p in gru.named_parameters():
            assert p.grad is not None, name
            assert np.any(p.grad != 0.0), name


class TestComposites:
    def test_sequential(self):
        seq = Sequential(Linear(3, 5), Linear(5, 2))
        assert seq(Tensor(np.ones((1, 3)))).shape == (1, 2)
        assert len(list(seq.parameters())) == 4

    def test_mlp_relu_nonlinearity(self):
        mlp = MLP(2, 4, 1, rng=np.random.default_rng(8))
        x1 = mlp(Tensor(np.array([[1.0, 1.0]]))).item()
        x2 = mlp(Tensor(np.array([[2.0, 2.0]]))).item()
        x15 = mlp(Tensor(np.array([[1.5, 1.5]]))).item()
        # ReLU makes it piecewise linear, generally not exactly midpoint —
        # but output must be finite and deterministic.
        assert np.isfinite([x1, x2, x15]).all()
