"""Invariant and equivalence tests for the discrete-event serving core.

Three contracts pin the refactor:

* :func:`repro.serving.simulate_queue` (now a façade over a
  :class:`ServerGroup` on the shared scheduler) is *exactly* equivalent —
  every served-job field, every aggregate — to the historical standalone
  arrival-driven loop, reproduced here as :func:`reference_simulate_queue`.
* :class:`BatcherActor` under serial ingest releases *exactly* the jobs
  :meth:`DynamicBatcher.coalesce` computes offline, for every trigger
  configuration.
* Scheduler conservation: every admitted job is served exactly once, no
  event fires out of timestamp order, and per-server busy intervals never
  overlap — over randomized arrival traces, all topologies, both ingest
  modes.
* Heap-vs-vectorized equivalence: the struct-of-array cohort scheduler
  fires the exact same sequence as the retained :class:`HeapEventScheduler`
  oracle — element for element over randomized programs with time ties,
  priority collisions, and dynamically scheduled follow-ups — and the full
  actor stack (batcher, groups, engine reports) is bit-identical under
  both (``TestHeapVsVectorizedEquivalence``).
"""

import heapq

import numpy as np
import pytest

from repro.datasets import wikipedia_like
from repro.graph import TemporalGraph
from repro.graph.temporal_graph import EdgeBatch
from repro.pipeline import LinearCostBackend
from repro.serving import (BatcherActor, DynamicBatcher, EventScheduler,
                           FlushEvent, HeapEventScheduler, HotColdHybrid,
                           MailEvent, ServiceBeginEvent, ServiceEndEvent,
                           ServingEngine, StreamArrival, SyncEvent,
                           VertexHeat, make_stream_arrivals, simulate_queue)
from repro.serving.events import ServedJob, ServerGroup, SimulationResult


# --------------------------------------------------------------------------- #
def reference_simulate_queue(arrivals, service_fn, num_servers=1,
                             queue_capacity=None):
    """The historical standalone queue loop (pre-event-core), verbatim.

    Kept here as the independent oracle the façade is property-tested
    against: same admission rule, same tie-breaking, same statistics.
    """
    arr = list(arrivals)
    free = [(0.0, s) for s in range(num_servers)]
    waiting = []
    served = []
    dropped = []
    busy = 0.0
    max_depth = 0
    for i, (t_arrive, payload) in enumerate(arr):
        while waiting and waiting[0] <= t_arrive:
            heapq.heappop(waiting)
        if queue_capacity is not None and len(waiting) >= queue_capacity \
                and free[0][0] > t_arrive:
            dropped.append(i)
            continue
        service = float(service_fn(payload))
        free_t, srv = heapq.heappop(free)
        begin = max(free_t, t_arrive)
        finish = begin + service
        heapq.heappush(free, (finish, srv))
        busy += service
        if begin > t_arrive:
            heapq.heappush(waiting, begin)
            max_depth = max(max_depth, len(waiting))
        served.append(ServedJob(index=i, t_arrive=t_arrive, t_begin=begin,
                                t_finish=finish, service_s=service,
                                server=srv))
    if not served:
        return SimulationResult(served=(), dropped_indices=tuple(dropped),
                                num_servers=num_servers, busy_s=0.0,
                                makespan_s=0.0, utilization=0.0,
                                offered_load=0.0, max_queue_depth=max_depth)
    t_first = arr[0][0]
    makespan = max(max(j.t_finish for j in served) - t_first, 0.0)
    utilization = busy / (num_servers * makespan) if makespan > 0 else \
        (1.0 if busy > 0 else 0.0)
    n = len(arr)
    span = arr[-1][0] - t_first
    mean_service = busy / len(served)
    if n <= 1:
        offered = 0.0
    elif span <= 0:
        offered = float("inf")
    else:
        offered = ((n - 1) / span) * mean_service / num_servers
    return SimulationResult(served=tuple(served),
                            dropped_indices=tuple(dropped),
                            num_servers=num_servers, busy_s=busy,
                            makespan_s=makespan, utilization=utilization,
                            offered_load=offered, max_queue_depth=max_depth)


def random_trace(rng, n, tie_prob=0.3):
    """Sorted arrival times with deliberate exact ties."""
    gaps = rng.exponential(1.0, size=n)
    gaps[rng.random(n) < tie_prob] = 0.0
    t = np.cumsum(gaps)
    return [(float(ti), i) for i, ti in enumerate(t)]


class TestFacadeEquivalence:
    """simulate_queue (event core) == the historical loop, field for field."""

    def assert_identical(self, a: SimulationResult, b: SimulationResult):
        assert a.served == b.served          # every ServedJob field, server
        assert a.dropped_indices == b.dropped_indices
        assert a.num_servers == b.num_servers
        assert a.busy_s == b.busy_s          # bit-exact, not approx
        assert a.makespan_s == b.makespan_s
        assert a.utilization == b.utilization
        assert a.offered_load == b.offered_load
        assert a.max_queue_depth == b.max_queue_depth

    @pytest.mark.parametrize("servers", [1, 2, 5])
    @pytest.mark.parametrize("capacity", [None, 0, 3])
    def test_randomized_traces(self, servers, capacity):
        rng = np.random.default_rng(servers * 100 + (capacity or 7))
        for trial in range(12):
            n = int(rng.integers(1, 120))
            arr = random_trace(rng, n)
            service = rng.exponential(0.8, size=n)
            got = simulate_queue(arr, lambda i: float(service[i]),
                                 num_servers=servers,
                                 queue_capacity=capacity)
            want = reference_simulate_queue(
                arr, lambda i: float(service[i]), num_servers=servers,
                queue_capacity=capacity)
            self.assert_identical(got, want)

    def test_deterministic_edge_cases(self):
        cases = [
            ([], 1, None),
            ([(0.0, 0)], 1, None),
            ([(0.0, 0)] * 5, 2, None),             # all-simultaneous burst
            ([(0.0, 0)] * 5, 2, 0),                # bufferless loss system
            ([(float(i), i) for i in range(10)], 3, 1),
            ([(0.0, 0), (0.0, 1), (1.0, 2), (1.0, 3)], 2, 2),
        ]
        for arr, servers, cap in cases:
            got = simulate_queue(arr, lambda _: 2.5, num_servers=servers,
                                 queue_capacity=cap)
            want = reference_simulate_queue(arr, lambda _: 2.5,
                                            num_servers=servers,
                                            queue_capacity=cap)
            self.assert_identical(got, want)

    def test_service_fn_called_in_admission_order_only_for_admitted(self):
        calls = []

        def service(payload):
            calls.append(payload)
            return 10.0

        arr = [(float(i) * 0.1, i) for i in range(6)]
        res = simulate_queue(arr, service, queue_capacity=1)
        assert calls == sorted(calls)
        assert len(calls) == res.jobs
        assert set(calls) | {arr[i][1] for i in res.dropped_indices} \
            == set(range(6))


# --------------------------------------------------------------------------- #
def tiny_batch(t, n_edges=1, num_nodes=8, seed=0):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_nodes, size=n_edges)
    dst = rng.integers(0, num_nodes, size=n_edges)
    return EdgeBatch(src=src.astype(np.int64), dst=dst.astype(np.int64),
                     t=np.full(n_edges, float(t)),
                     eid=np.arange(n_edges, dtype=np.int64),
                     edge_feat=np.zeros((n_edges, 0)))


def random_arrivals(rng, n):
    t = np.cumsum(rng.exponential(1.0, size=n))
    t[rng.random(n) < 0.2] = np.nan        # mark ties...
    if np.isnan(t[0]):
        t[0] = 0.0
    # ...by repeating the previous instant.
    for i in range(1, n):
        if np.isnan(t[i]):
            t[i] = t[i - 1]
    return [StreamArrival(t=float(t[i]), stream=0,
                          batch=tiny_batch(t[i],
                                           n_edges=int(rng.integers(1, 9)),
                                           seed=i))
            for i in range(n)]


class TestBatcherActorEquivalence:
    """Serial BatcherActor == offline DynamicBatcher.coalesce, exactly."""

    CONFIGS = [
        dict(),                                     # passthrough
        dict(max_edges=16),                         # size-only (inf deadline)
        dict(max_edges=16, max_delay_s=3.0),        # size + deadline
        dict(max_delay_s=2.0),                      # deadline-only
        dict(max_edges=3),                          # cap below arrival size
        dict(max_edges=10_000, max_delay_s=0.0),    # passthrough via deadline
    ]

    def run_actor(self, batcher, arrivals, ingest="serial", fleet=()):
        sched = EventScheduler()
        jobs = []
        actor = BatcherActor(batcher, sched, jobs.append, ingest=ingest,
                             fleet=fleet)
        actor.start(arrivals)
        sched.run()
        return jobs

    @pytest.mark.parametrize("cfg_index", range(len(CONFIGS)))
    def test_matches_offline_coalesce(self, cfg_index):
        cfg = self.CONFIGS[cfg_index]
        rng = np.random.default_rng(1000 + cfg_index)   # reproducible
        for trial in range(8):
            arrivals = random_arrivals(rng, int(rng.integers(1, 60)))
            offline = DynamicBatcher(**cfg).coalesce(arrivals)
            online = self.run_actor(DynamicBatcher(**cfg), arrivals)
            assert len(online) == len(offline)
            for a, b in zip(online, offline):
                assert a.t_release == b.t_release      # bit-exact
                assert a.sources == b.sources
                assert np.array_equal(a.batch.t, b.batch.t)

    def test_real_window_arrivals_match(self):
        g = wikipedia_like(num_edges=600, num_users=80, num_items=20)
        arrivals = make_stream_arrivals(g, 3600.0, num_streams=2,
                                        speedup=4.0)
        for cfg in self.CONFIGS:
            offline = DynamicBatcher(**cfg).coalesce(arrivals)
            online = self.run_actor(DynamicBatcher(**cfg), arrivals)
            assert [(j.t_release, len(j.sources)) for j in online] \
                == [(j.t_release, len(j.sources)) for j in offline]

    def test_unsorted_arrivals_rejected(self):
        arrivals = [StreamArrival(1.0, 0, tiny_batch(1.0)),
                    StreamArrival(0.0, 0, tiny_batch(0.0))]
        with pytest.raises(ValueError, match="sorted"):
            self.run_actor(DynamicBatcher(), arrivals)

    def test_invalid_ingest_mode_rejected(self):
        with pytest.raises(ValueError, match="ingest"):
            BatcherActor(DynamicBatcher(), EventScheduler(), lambda j: None,
                         ingest="warp")


# --------------------------------------------------------------------------- #
class TestSchedulerInvariants:
    @pytest.mark.parametrize("ingest", ["serial", "pipelined"])
    def test_events_fire_in_timestamp_order(self, ingest):
        """The full typed-event trace of an engine run is time-monotone,
        and every event family shows up at its event-time slot."""
        g = wikipedia_like(num_edges=400, num_users=60, num_items=16)
        engine = ServingEngine(
            [LinearCostBackend(per_edge_s=5e-3) for _ in range(3)],
            g.num_nodes, batcher=DynamicBatcher(max_delay_s=500.0),
            memsync="push")
        arrivals = make_stream_arrivals(g, 3600.0, num_streams=2,
                                        speedup=50.0)
        rep = engine._run_events(arrivals, 3600.0, 50.0, 2, None, ingest,
                                 trace=True)
        assert rep.windows > 0
        trace = engine.last_event_trace
        times = [e.t for e in trace]
        assert times == sorted(times)
        kinds = {type(e) for e in trace}
        assert {FlushEvent, ServiceBeginEvent, ServiceEndEvent,
                MailEvent, SyncEvent} <= kinds
        # Mail and sync are recorded at the release instant of their job.
        flushes = {e.t for e in trace if isinstance(e, FlushEvent)}
        for e in trace:
            if isinstance(e, (MailEvent, SyncEvent)):
                assert e.t in flushes
        # Begins never precede their job's release into the system.
        ends = [e for e in trace if isinstance(e, ServiceEndEvent)]
        begins = [e for e in trace if isinstance(e, ServiceBeginEvent)]
        assert len(ends) == len(begins)

    def test_scheduling_into_the_past_raises(self):
        sched = EventScheduler()
        fired = []

        def bad_handler(_):
            # Time has advanced to 5.0; scheduling at 1.0 is a bug.
            sched.schedule(1.0, 0, None, fired.append)

        sched.schedule(5.0, 0, None, bad_handler)
        with pytest.raises(RuntimeError, match="before now"):
            sched.run()

    def test_cancelled_events_never_fire(self):
        sched = EventScheduler()
        fired = []
        token = sched.schedule(1.0, 0, None, fired.append)
        sched.schedule(2.0, 0, None, lambda e: fired.append("kept"))
        sched.cancel(token)
        sched.run()
        assert fired == ["kept"]


def check_conservation(report, results):
    """Every admitted job served exactly once; busy intervals disjoint."""
    for res in results:
        indices = [j.index for j in res.served]
        assert len(indices) == len(set(indices))            # exactly once
        assert set(indices) & set(res.dropped_indices) == set()
        by_server = {}
        for j in res.served:
            assert j.t_finish >= j.t_begin >= 0.0
            assert j.t_begin >= j.t_arrive or j.t_arrive < 0
            by_server.setdefault(j.server, []).append(j)
        for jobs in by_server.values():
            jobs.sort(key=lambda j: j.t_begin)
            for a, b in zip(jobs, jobs[1:]):
                assert b.t_begin >= a.t_finish - 1e-12      # no overlap


class TestConservationAcrossTopologies:
    """Randomized traces through every topology x ingest combination."""

    def graph(self, seed=0):
        return wikipedia_like(num_edges=500, num_users=60, num_items=16)

    def build(self, topology, g):
        if topology == "pool":
            return ServingEngine([LinearCostBackend(per_edge_s=2e-3)],
                                 g.num_nodes, topology="pool",
                                 pool_servers=3,
                                 batcher=DynamicBatcher(max_delay_s=200.0))
        if topology == "hybrid":
            heat = VertexHeat.from_graph(g)
            placement = HotColdHybrid(hot_top_k=8).place(heat, 4)
            return ServingEngine(
                [LinearCostBackend(per_edge_s=2e-3) for _ in range(4)],
                g.num_nodes, placement=placement, topology="hybrid",
                pool_servers=3, batcher=DynamicBatcher(max_delay_s=200.0))
        return ServingEngine(
            [LinearCostBackend(per_edge_s=2e-3) for _ in range(3)],
            g.num_nodes, batcher=DynamicBatcher(max_delay_s=200.0))

    @pytest.mark.parametrize("topology", ["sharded", "pool", "hybrid"])
    @pytest.mark.parametrize("ingest", ["serial", "pipelined"])
    def test_served_exactly_once_and_busy_disjoint(self, topology, ingest):
        g = self.graph()
        engine = self.build(topology, g)
        arrivals = make_stream_arrivals(g, 3600.0, num_streams=2,
                                        speedup=100.0)
        rep = engine.run(g, window_s=3600.0, num_streams=2, speedup=100.0,
                         ingest=ingest)
        assert rep.windows + rep.dropped_windows == len(arrivals)
        assert rep.dropped_windows == 0
        assert rep.ingest == ingest
        assert rep.topology == topology

    @pytest.mark.parametrize("topology", ["sharded", "pool", "hybrid"])
    @pytest.mark.parametrize("ingest", ["serial", "pipelined"])
    def test_group_level_conservation(self, topology, ingest):
        g = self.graph()
        engine = self.build(topology, g)
        arrivals = make_stream_arrivals(g, 3600.0, num_streams=2,
                                        speedup=100.0)
        # Bounded queues so drops are in play, driven at the raw-group
        # level for per-server busy intervals and exactly-once admission.
        rep = engine._run_events(arrivals, 3600.0, 100.0, 2, 2, ingest)
        assert rep.windows + rep.dropped_windows == len(arrivals)
        check_conservation(rep, self._raw_results(engine, arrivals, ingest))

    def _raw_results(self, engine, arrivals, ingest):
        sched = EventScheduler()
        groups = engine._make_groups(sched, 2)
        submitted = [[] for _ in groups]
        from repro.serving.events import BatcherActor as BA

        if engine.topology == "pool":
            def sink(job):
                groups[0].submit(job.t_release, job)
        else:
            from repro.serving.memsync import VersionedMemoryCache
            cache = VersionedMemoryCache(engine.router.placement,
                                         policy=engine.memsync)

            def sink(job):
                for sb in engine.router.split(job.batch, cache=cache):
                    groups[sb.shard].submit(job.t_release,
                                            (0, sb, 0, 0))
        actor = BA(engine.batcher, sched, sink, ingest=ingest,
                   fleet=groups if ingest == "pipelined" else ())
        if ingest == "pipelined":
            for grp in groups:
                grp.on_hungry = actor.on_hungry
        actor.start(arrivals)
        sched.run()
        return [grp.finalize() for grp in groups]


# --------------------------------------------------------------------------- #
class TestPipelinedIngest:
    """Double-buffered ingest: batching delay hides behind compute."""

    def test_idle_fleet_flushes_immediately(self):
        """On a light workload with a long deadline, pipelined ingest
        strictly beats serial: serial pays the deadline on every window."""
        g = wikipedia_like(num_edges=400, num_users=60, num_items=16)
        deadline = 300.0

        def engine():
            return ServingEngine(
                [LinearCostBackend(per_edge_s=1e-4) for _ in range(2)],
                g.num_nodes, batcher=DynamicBatcher(max_delay_s=deadline))

        serial = engine().run(g, window_s=3600.0, num_streams=2)
        pipelined = engine().run(g, window_s=3600.0, num_streams=2,
                                 ingest="pipelined")
        assert pipelined.p95_response_s < serial.p95_response_s
        assert pipelined.mean_response_s < serial.mean_response_s
        # Serial pays the full deadline; pipelined pays none of it at this
        # load (the fleet is hungry at every arrival).
        assert serial.p95_response_s > deadline
        assert pipelined.p95_response_s < deadline
        # Same stream served either way.
        assert pipelined.windows == serial.windows
        assert pipelined.ingested_edges == serial.ingested_edges

    def test_busy_fleet_still_batches(self):
        """Under overload the fleet is never hungry, so pipelined ingest
        degenerates to the serial triggers (batching is free there)."""
        g = wikipedia_like(num_edges=400, num_users=60, num_items=16)

        def engine():
            return ServingEngine(
                [LinearCostBackend(per_edge_s=10.0)],   # hopelessly slow
                g.num_nodes, batcher=DynamicBatcher(max_delay_s=1e-3))

        serial = engine().run(g, window_s=3600.0, speedup=1e9)
        pipelined = engine().run(g, window_s=3600.0, speedup=1e9,
                                 ingest="pipelined")
        # First window finds a hungry fleet, after that both batch alike;
        # throughput-side accounting must agree.
        assert pipelined.ingested_edges == serial.ingested_edges
        assert not serial.stable and not pipelined.stable

    def test_serial_report_has_no_ingest_key_pipelined_does(self):
        g = wikipedia_like(num_edges=300, num_users=40, num_items=10)
        engine = ServingEngine([LinearCostBackend()], g.num_nodes)
        serial = engine.run(g, window_s=3600.0)
        pipelined = ServingEngine([LinearCostBackend()], g.num_nodes).run(
            g, window_s=3600.0, ingest="pipelined")
        assert "ingest" not in serial.to_dict()
        assert pipelined.to_dict()["ingest"] == "pipelined"
        assert b'"ingest"' not in serial.to_json().encode()

    def test_invalid_ingest_rejected(self):
        g = wikipedia_like(num_edges=300, num_users=40, num_items=10)
        engine = ServingEngine([LinearCostBackend()], g.num_nodes)
        with pytest.raises(ValueError, match="ingest"):
            engine.run(g, window_s=3600.0, ingest="quantum")


# --------------------------------------------------------------------------- #
class TestHybridTopology:
    def skewed_graph(self, num_cold=200, seed=3):
        """Hot head (4 vertices, most traffic) + long cold tail."""
        rng = np.random.default_rng(seed)
        n_edges = 600
        hot = rng.integers(0, 4, size=(n_edges, 2))
        cold = rng.integers(4, 4 + num_cold, size=(n_edges, 2))
        pick_hot = rng.random(n_edges) < 0.7
        src = np.where(pick_hot, hot[:, 0], cold[:, 0])
        dst = np.where(pick_hot, hot[:, 1], cold[:, 1])
        dst = np.where(dst == src, (dst + 1) % (4 + num_cold), dst)
        t = np.sort(rng.uniform(0, 1e4, size=n_edges))
        return TemporalGraph(src=src.astype(np.int64),
                             dst=dst.astype(np.int64), t=t,
                             num_nodes=4 + num_cold)

    def build(self, g, hot_shards=2, pool_servers=2, hot_top_k=4):
        heat = VertexHeat.from_graph(g)
        placement = HotColdHybrid(hot_top_k=hot_top_k).place(
            heat, hot_shards + 1)
        return ServingEngine(
            [LinearCostBackend(per_edge_s=1e-3, overhead_s=5e-3)
             for _ in range(hot_shards + 1)],
            g.num_nodes, placement=placement, topology="hybrid",
            pool_servers=pool_servers)

    def test_placement_splits_hot_and_cold(self):
        g = self.skewed_graph()
        heat = VertexHeat.from_graph(g)
        placement = HotColdHybrid(hot_top_k=4).place(heat, 3)
        assert placement.policy == "hybrid"
        hot = np.flatnonzero(placement.assignment < 2)
        assert len(hot) == 4
        # The hot head really is the measured top of the heat profile.
        assert set(hot.tolist()) == {0, 1, 2, 3}
        assert (placement.assignment[4:] == 2).all()
        with pytest.raises(ValueError):
            HotColdHybrid(hot_top_k=0)
        with pytest.raises(ValueError):
            HotColdHybrid().place(heat, 1)

    def test_report_shape(self):
        g = self.skewed_graph()
        rep = self.build(g).run(g, window_s=1e3, num_streams=2)
        assert rep.topology == "hybrid"
        assert rep.placement == "hybrid"
        assert rep.num_shards == 3                 # 2 hot + pool
        assert rep.pool_servers == 2
        assert len(rep.shard_stats) == 3
        assert rep.shard_stats[-1].servers == 2    # the pool group
        assert all(s.servers == 1 for s in rep.shard_stats[:-1])
        assert rep.windows > 0
        # Cross-regime mail exists: hot<->cold edges ride the mailbox.
        assert rep.cross_shard_edges > 0
        assert rep.processed_edges == \
            rep.ingested_edges + rep.cross_shard_edges
        # JSON stays canonical and carries the topology.
        d = rep.to_dict()
        assert d["topology"] == "hybrid"
        assert d["pool_servers"] == 2

    def test_hybrid_with_memsync_prices_sync(self):
        g = self.skewed_graph()
        heat = VertexHeat.from_graph(g)
        placement = HotColdHybrid(hot_top_k=4).place(heat, 3)
        engine = ServingEngine(
            [LinearCostBackend(per_edge_s=1e-3) for _ in range(3)],
            g.num_nodes, placement=placement, topology="hybrid",
            pool_servers=2, memsync="push",
            die_of=[0, 1, 0], mail_hop_s=1e-4)
        rep = engine.run(g, window_s=1e3, num_streams=2)
        assert rep.memsync == "push"
        assert rep.sync_edges > 0
        assert rep.stale_reads == 0
        assert rep.cross_die_mail_edges > 0

    def test_hybrid_determinism(self):
        g = self.skewed_graph()
        a = self.build(g).run(g, window_s=1e3, num_streams=2).to_json()
        b = self.build(g).run(g, window_s=1e3, num_streams=2).to_json()
        assert a == b

    def test_from_registry_builds_hybrid(self):
        g = wikipedia_like(num_edges=400, num_users=60, num_items=12)
        from repro.models import ModelConfig, TGNN
        cfg = ModelConfig(memory_dim=8, time_dim=6, embed_dim=8,
                          edge_dim=g.edge_dim, num_neighbors=4,
                          simplified_attention=True, lut_time_encoder=True,
                          lut_bins=8, pruning_budget=2)
        model = TGNN(cfg, rng=np.random.default_rng(0))
        model.calibrate(g)
        engine = ServingEngine.from_registry(
            "cpu-32t", model, g, num_shards=2, topology="hybrid",
            hot_top_k=6, backend_kwargs={"functional": False})
        assert engine.topology == "hybrid"
        assert engine.num_shards == 3
        assert engine.pool_servers == 2
        rep = engine.run(g, window_s=3600.0, num_streams=2)
        assert rep.topology == "hybrid"
        assert rep.windows > 0

    def test_validation(self):
        g = self.skewed_graph()
        with pytest.raises(ValueError, match="placement"):
            ServingEngine([LinearCostBackend(), LinearCostBackend()],
                          g.num_nodes, topology="hybrid")
        with pytest.raises(ValueError, match="pool_servers"):
            ServingEngine([LinearCostBackend()], g.num_nodes,
                          pool_servers=2)


# --------------------------------------------------------------------------- #
class TestHeapVsVectorizedEquivalence:
    """Property: the SoA/cohort scheduler == the heap oracle, exactly.

    The heap implementation is kept (``HeapEventScheduler``) purely as the
    reference these tests drive: any divergence in firing order — including
    among exact time ties, across priorities, and against events scheduled
    dynamically from handlers — is a bug in the vectorized scheduler.
    """

    SPAWN_BASE = 1_000_000   # tags >= this are dynamically spawned events

    def _random_program(self, rng):
        """A mix of point events and sorted runs with deliberate ties.

        Integer-grid times force exact collisions across ops; each element
        gets a unique tag so the fired sequences compare element-for-
        element.
        """
        ops, tag = [], 0
        for _ in range(int(rng.integers(3, 9))):
            base = float(rng.integers(0, 6))
            prio = int(rng.integers(0, 3))
            if rng.random() < 0.45:
                ops.append(("point", base, prio, tag))
                tag += 1
            else:
                n = int(rng.integers(1, 12))
                ts = base + np.cumsum(
                    rng.integers(0, 2, size=n).astype(np.float64))
                tags = list(range(tag, tag + n))
                tag += n
                ops.append(("run", ts, prio, tags))
        return ops

    def _drive(self, sched, ops, vectorized):
        """Run one lane; returns the fired (t, priority, tag) sequence.

        Every 5th tag spawns a follow-up event from inside its handler —
        the cohort handler honours the dispatch contract by consuming no
        further elements once one spawns (the new event may land inside
        the remainder of the offered span).
        """
        fired = []

        def on_point(ev):
            t, prio, tag = ev
            fired.append((t, prio, tag))
            self._maybe_spawn(sched, t, tag, on_point)

        def on_cohort(t0, payloads, start, stop):
            consumed = 0
            for i in range(start, stop):
                t, prio, tag = payloads[i]
                fired.append((t, prio, tag))
                consumed += 1
                if self._spawns(tag):
                    self._maybe_spawn(sched, t, tag, on_point)
                    break
            return consumed

        # Identical schedule-call order in both lanes: the sequence
        # numbers that break exact (t, priority) ties line up only if the
        # heap lane expands each run element-by-element in place.
        for op in ops:
            if op[0] == "point":
                _, t, prio, tag = op
                sched.schedule(t, prio, (t, prio, tag), on_point)
            elif vectorized:
                _, ts, prio, tags = op
                payloads = [(float(t), prio, g) for t, g in zip(ts, tags)]
                sched.schedule_run(ts, prio, payloads, on_cohort)
            else:
                _, ts, prio, tags = op
                for t, g in zip(ts, tags):
                    sched.schedule(float(t), prio, (float(t), prio, g),
                                   on_point)
        sched.run()
        return fired

    def _spawns(self, tag):
        return tag < self.SPAWN_BASE and tag % 5 == 0

    def _maybe_spawn(self, sched, t, tag, on_point):
        if self._spawns(tag):
            spawned = (t + 1.5, 1, self.SPAWN_BASE + tag)
            sched.schedule(spawned[0], spawned[1], spawned, on_point)

    def test_firing_order_identical_randomized(self):
        for trial in range(60):
            rng = np.random.default_rng(4200 + trial)
            ops = self._random_program(rng)
            heap = HeapEventScheduler()
            vec = EventScheduler()
            heap_fired = self._drive(heap, ops, vectorized=False)
            vec_fired = self._drive(vec, ops, vectorized=True)
            assert vec_fired == heap_fired
            assert vec.events_processed == heap.events_processed
            assert vec.now == heap.now

    @pytest.mark.parametrize(
        "cfg_index", range(len(TestBatcherActorEquivalence.CONFIGS)))
    def test_actor_stack_jobs_bit_identical(self, cfg_index):
        """Batcher releases (times, sources, merged arrays) match exactly.

        This also pins the bulk path's sliced struct-of-array merge
        against the per-batch ``merge_batches`` the heap lane still runs.
        """
        cfg = TestBatcherActorEquivalence.CONFIGS[cfg_index]
        rng = np.random.default_rng(7100 + cfg_index)
        for trial in range(6):
            arrivals = random_arrivals(rng, int(rng.integers(1, 80)))
            lanes = []
            for cls in (HeapEventScheduler, EventScheduler):
                sched = cls()
                jobs = []
                actor = BatcherActor(DynamicBatcher(**cfg), sched,
                                     jobs.append)
                actor.start(arrivals)
                sched.run()
                lanes.append(jobs)
            heap_jobs, vec_jobs = lanes
            assert len(vec_jobs) == len(heap_jobs)
            for a, b in zip(vec_jobs, heap_jobs):
                assert a.t_release == b.t_release          # bit-exact
                assert a.sources == b.sources
                for field in ("src", "dst", "t", "eid", "edge_feat"):
                    assert np.array_equal(getattr(a.batch, field),
                                          getattr(b.batch, field))

    @pytest.mark.parametrize("topology", ["sharded", "pool"])
    @pytest.mark.parametrize("ingest", ["serial", "pipelined"])
    def test_engine_reports_byte_identical(self, topology, ingest):
        g = wikipedia_like(num_edges=500, num_users=60, num_items=16)

        def build():
            if topology == "pool":
                return ServingEngine([LinearCostBackend(per_edge_s=2e-3)],
                                     g.num_nodes, topology="pool",
                                     pool_servers=3,
                                     batcher=DynamicBatcher(
                                         max_delay_s=200.0))
            return ServingEngine(
                [LinearCostBackend(per_edge_s=2e-3) for _ in range(3)],
                g.num_nodes, batcher=DynamicBatcher(max_delay_s=200.0))

        reports = {}
        for cls in (HeapEventScheduler, None):
            engine = build()
            reports[cls] = engine.run(g, window_s=3600.0, num_streams=2,
                                      speedup=100.0, ingest=ingest,
                                      scheduler_cls=cls)
        assert reports[None].to_json() == reports[HeapEventScheduler].to_json()
