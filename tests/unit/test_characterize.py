"""Unit tests for the §III bottleneck-characterization API."""

import pytest

from repro.hw import U200_DESIGN, ZCU104_DESIGN
from repro.models import ModelConfig
from repro.perf import characterize, lever_analysis

SAT = ModelConfig(simplified_attention=True)


class TestCharacterize:
    def test_published_points_are_compute_bound(self):
        for hw in (U200_DESIGN, ZCU104_DESIGN):
            c = characterize(SAT, hw)
            assert c.bound == "compute"
            assert c.compute_margin > 1.0
            assert c.dominant_stage in ("muu_update_gate", "muu_reset_gate",
                                        "muu_memory_gate", "eu_ftm")

    def test_section3_key_point_1_gnn_dominates(self):
        c = characterize(ModelConfig(simplified_attention=True), U200_DESIGN)
        # Baseline (non-SAT) GNN share is even larger; SAT still > 70 %.
        assert c.gnn_share_of_macs > 0.7

    def test_section3_key_point_2_time_encoding_removable(self):
        c = characterize(SAT, U200_DESIGN)
        assert 0.05 < c.time_encoding_share < 0.5
        lut = characterize(SAT.with_(lut_time_encoder=True), U200_DESIGN)
        assert lut.time_encoding_share == 0.0

    def test_section3_key_point_3_state_traffic_dominates_mems(self):
        c = characterize(SAT, U200_DESIGN)
        assert c.state_traffic_share > 0.8

    def test_memory_bound_regime_reachable(self):
        """Starve bandwidth enough and the verdict flips."""
        from repro.hw.platforms import FPGAPlatform
        p = ZCU104_DESIGN.platform
        thin = FPGAPlatform(name="thin", dies=1, luts_per_die=p.luts_per_die,
                            dsps_per_die=p.dsps_per_die,
                            brams_per_die=p.brams_per_die,
                            urams_per_die=p.urams_per_die,
                            ddr_bw_gbs=0.05)
        hw = ZCU104_DESIGN.with_(platform=thin, sg=16, s_ftm=(16, 16))
        c = characterize(SAT, hw)
        assert c.bound == "memory"


class TestLeverAnalysis:
    def test_rows_and_ratios(self):
        rows = lever_analysis(SAT, ZCU104_DESIGN)
        by = {r["lever"]: r for r in rows}
        assert set(by) == {"lut_encoder", "pruning_np_s", "double_sg",
                           "double_bandwidth"}
        for r in rows:
            assert r["latency_ratio"] > 0

    def test_compute_levers_help_on_compute_bound_design(self):
        rows = lever_analysis(SAT, ZCU104_DESIGN)
        by = {r["lever"]: r for r in rows}
        assert by["double_sg"]["helps"]
        assert by["lut_encoder"]["latency_ratio"] <= 1.0
        # On a compute-bound design, doubling bandwidth buys ~nothing.
        assert by["double_bandwidth"]["latency_ratio"] \
            == pytest.approx(1.0, abs=0.05)

    def test_accepts_vanilla_base(self):
        rows = lever_analysis(ModelConfig(), ZCU104_DESIGN)
        assert len(rows) == 4
