"""Unit tests for the CLI (in-process invocation, no subprocesses)."""

import os

import pytest

from repro.cli import build_parser, main


def run(argv):
    lines = []
    code = main(argv, out=lines.append)
    return code, "\n".join(str(x) for x in lines)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])


class TestInfo:
    def test_lists_datasets_and_designs(self):
        code, text = run(["info"])
        assert code == 0
        assert "wikipedia" in text and "gdelt" in text
        assert "u200" in text and "zcu104" in text


class TestTrainEvalInfer:
    @pytest.fixture(scope="class")
    def checkpoint(self, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("ckpt") / "model.npz")
        code, text = run([
            "train", "--dataset", "wikipedia", "--edges", "600",
            "--epochs", "1", "--batch-size", "100", "--memory-dim", "12",
            "--neighbors", "4", "--simplified", "--lut", "--prune", "2",
            "--out", path])
        assert code == 0
        assert "saved checkpoint" in text
        return path

    def test_eval(self, checkpoint):
        code, text = run(["eval", "--model", checkpoint,
                          "--dataset", "wikipedia", "--edges", "600"])
        assert code == 0
        assert "AP" in text

    def test_infer_software(self, checkpoint):
        code, text = run(["infer", "--model", checkpoint,
                          "--dataset", "wikipedia", "--edges", "600",
                          "--backend", "software"])
        assert code == 0
        assert "kE/s" in text and "measured" in text

    def test_infer_simulated(self, checkpoint):
        code, text = run(["infer", "--model", checkpoint,
                          "--dataset", "wikipedia", "--edges", "600",
                          "--backend", "zcu104"])
        assert code == 0
        assert "simulated (zcu104)" in text

    def test_distillation_path(self, checkpoint, tmp_path):
        student = str(tmp_path / "student.npz")
        code, text = run([
            "train", "--dataset", "wikipedia", "--edges", "600",
            "--epochs", "1", "--batch-size", "100", "--memory-dim", "12",
            "--neighbors", "4", "--simplified",
            "--teacher", checkpoint, "--out", student])
        assert code == 0
        assert "distilled" in text
        assert os.path.exists(student)


class TestServeSim:
    def test_serve_sim_four_by_four(self):
        code, text = run(["serve-sim", "--dataset", "wikipedia",
                          "--edges", "600", "--shards", "4",
                          "--streams", "4", "--speedup", "2.0",
                          "--window-s", "3600", "--backend", "cpu-32t",
                          "--memory-dim", "8"])
        assert code == 0
        assert "4 shard(s) x 4 stream(s) @ 2x" in text
        assert text.count("shard ") >= 4
        assert "p95" in text and "cross-shard edges" in text
        assert "stable" in text

    def test_serve_sim_single_shard_with_batching(self):
        code, text = run(["serve-sim", "--dataset", "wikipedia",
                          "--edges", "600", "--shards", "1",
                          "--streams", "1", "--backend", "cpu-32t",
                          "--window-s", "3600", "--deadline-ms", "50",
                          "--batch-edges", "128", "--memory-dim", "8"])
        assert code == 0
        assert "1 shard(s) x 1 stream(s)" in text

    def test_serve_sim_backend_choices_track_registry(self):
        from repro.serving import DEFAULT_REGISTRY
        sub = [a for a in build_parser()._subparsers._group_actions[0]
               .choices["serve-sim"]._actions if a.dest == "backend"][0]
        assert list(sub.choices) == DEFAULT_REGISTRY.available()

    def test_serve_sim_u200_prices_die_crossings(self):
        code, text = run(["serve-sim", "--dataset", "wikipedia",
                          "--edges", "400", "--shards", "2",
                          "--streams", "2", "--backend", "u200",
                          "--window-s", "3600", "--memory-dim", "8"])
        assert code == 0
        assert "die crossings" in text

    def test_serve_sim_profile_compares_schedulers(self):
        code, text = run(["serve-sim", "--dataset", "wikipedia",
                          "--edges", "400", "--shards", "2",
                          "--streams", "2", "--backend", "cpu-32t",
                          "--window-s", "3600", "--memory-dim", "8",
                          "--profile"])
        assert code == 0
        assert "event core profile" in text
        assert "heap (before)" in text
        assert "vectorized (after)" in text
        # The two lanes replay the identical workload: the breakdown must
        # certify byte-identical reports, and the normal report follows.
        assert "reports byte-identical: yes" in text
        assert "p95" in text

    def test_serve_sim_rebalance_profiles_then_migrates(self):
        # A near-zero threshold guarantees the profiling pass flags every
        # loaded shard, so migrations must happen.
        code, text = run(["serve-sim", "--dataset", "wikipedia",
                          "--edges", "600", "--shards", "4",
                          "--streams", "4", "--backend", "cpu-32t",
                          "--window-s", "3600", "--memory-dim", "8",
                          "--placement", "rebalance",
                          "--util-threshold", "1e-9"])
        assert code == 0
        assert "rebalance: profiled max util" in text
        assert "[placement rebalance]" in text

    def test_serve_sim_replicate_reports_copies(self):
        code, text = run(["serve-sim", "--dataset", "wikipedia",
                          "--edges", "600", "--shards", "4",
                          "--streams", "2", "--backend", "cpu-32t",
                          "--window-s", "3600", "--memory-dim", "8",
                          "--placement", "replicate",
                          "--replicate-top-k", "4"])
        assert code == 0
        assert "replicate: 4 read-mostly" in text
        assert "4 replicated vertices" in text

    def test_serve_sim_pool_topology(self):
        code, text = run(["serve-sim", "--dataset", "wikipedia",
                          "--edges", "600", "--shards", "4",
                          "--streams", "2", "--backend", "cpu-32t",
                          "--window-s", "3600", "--memory-dim", "8",
                          "--topology", "pool"])
        assert code == 0
        assert "pool of 4 replica(s)" in text
        assert "x1.00 replication" in text

    def test_serve_sim_golden_json_determinism(self, tmp_path):
        """Two runs with identical arguments produce byte-identical JSON —
        the guard against hidden RNG or dict-ordering nondeterminism."""
        argv = ["serve-sim", "--dataset", "wikipedia", "--edges", "400",
                "--shards", "4", "--streams", "2", "--backend", "cpu-32t",
                "--window-s", "3600", "--memory-dim", "8", "--seed", "0"]
        paths = [str(tmp_path / "a.json"), str(tmp_path / "b.json")]
        for path in paths:
            code, _ = run(argv + ["--json", path])
            assert code == 0
        a, b = (open(p, "rb").read() for p in paths)
        assert a == b
        assert b"replication_factor" in a and b"topology" in a

    def test_serve_sim_memsync_push_prints_sync_traffic(self):
        code, text = run(["serve-sim", "--dataset", "wikipedia",
                          "--edges", "600", "--shards", "4",
                          "--streams", "2", "--backend", "cpu-32t",
                          "--window-s", "3600", "--memory-dim", "8",
                          "--memsync", "push"])
        assert code == 0
        assert "memsync push:" in text
        assert "memory rows synced" in text

    def test_serve_sim_memsync_none_matches_default_byte_for_byte(
            self, tmp_path):
        """Acceptance: --memsync none reproduces today's (no-flag) report."""
        argv = ["serve-sim", "--dataset", "wikipedia", "--edges", "400",
                "--shards", "4", "--streams", "2", "--backend", "cpu-32t",
                "--window-s", "3600", "--memory-dim", "8"]
        paths = [str(tmp_path / "default.json"), str(tmp_path / "none.json")]
        code, text_default = run(argv + ["--json", paths[0]])
        assert code == 0
        code, text_none = run(argv + ["--memsync", "none",
                                      "--json", paths[1]])
        assert code == 0
        a, b = (open(p, "rb").read() for p in paths)
        assert a == b
        # Console output matches too (modulo the JSON path echo line).
        strip = lambda t: [ln for ln in t.splitlines()
                           if not ln.startswith("wrote JSON")]
        assert strip(text_default) == strip(text_none)
        # none stays silent: no memsync traffic line is printed.
        assert not any(ln.startswith("memsync")
                       for ln in text_none.splitlines())

    def test_serve_sim_memsync_json_determinism(self, tmp_path):
        argv = ["serve-sim", "--dataset", "wikipedia", "--edges", "400",
                "--shards", "4", "--streams", "2", "--backend", "cpu-32t",
                "--window-s", "3600", "--memory-dim", "8",
                "--memsync", "invalidate"]
        paths = [str(tmp_path / "a.json"), str(tmp_path / "b.json")]
        for path in paths:
            code, _ = run(argv + ["--json", path])
            assert code == 0
        a, b = (open(p, "rb").read() for p in paths)
        assert a == b
        import json
        report = json.loads(a)
        assert report["memsync"] == "invalidate"
        assert report["sync_edges"] > 0
        assert report["stale_reads"] == 0

    def test_serve_sim_pool_ignores_memsync_with_note(self):
        code, text = run(["serve-sim", "--dataset", "wikipedia",
                          "--edges", "400", "--shards", "2",
                          "--streams", "2", "--backend", "cpu-32t",
                          "--window-s", "3600", "--memory-dim", "8",
                          "--topology", "pool", "--memsync", "push"])
        assert code == 0
        assert "--memsync push is ignored" in text
        assert "pool of 2 replica(s)" in text

    def test_serve_sim_json_covers_every_topology(self, tmp_path):
        for i, extra in enumerate((["--topology", "pool"],
                                   ["--placement", "replicate"],
                                   ["--topology", "hybrid"])):
            path = str(tmp_path / f"r{i}.json")
            code, _ = run(["serve-sim", "--dataset", "wikipedia",
                           "--edges", "400", "--shards", "2",
                           "--streams", "2", "--backend", "cpu-32t",
                           "--window-s", "3600", "--memory-dim", "8",
                           "--json", path] + extra)
            assert code == 0
            import json
            with open(path) as f:
                report = json.load(f)
            assert report["stable"] in (True, False)
            assert report["replication_factor"] >= 1.0


class TestServeSimGolden:
    """``--ingest serial`` reports are byte-identical to the pre-event-core
    engine: the first three golden files were generated by the PR 3 engine
    (before the unified scheduler refactor) and pin the serial path
    bit-for-bit.  Later goldens pin the PR that introduced their feature —
    ``serve_sim_rebalance_online.json`` freezes the online-rebalancing
    migration accounting (migration count, handoff rows, post-migration
    queueing statistics) so future PRs cannot silently change it."""

    GOLDEN_DIR = os.path.join(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))), "tests", "golden")

    BASE = ["serve-sim", "--dataset", "wikipedia", "--edges", "400",
            "--shards", "4", "--streams", "2", "--backend", "cpu-32t",
            "--window-s", "3600", "--memory-dim", "8", "--seed", "0"]

    CASES = {
        "serve_sim_sharded.json": [],
        "serve_sim_pool.json": ["--topology", "pool"],
        "serve_sim_memsync_batched.json": [
            "--memsync", "push", "--deadline-ms", "50",
            "--batch-edges", "128", "--placement", "replicate"],
        "serve_sim_rebalance_online.json": [
            "--speedup", "2000", "--rebalance-online",
            "--rebalance-threshold", "0.05"],
        "serve_sim_failover.json": [
            "--memsync", "push", "--placement", "replicate",
            "--speedup", "2000", "--fail-at", "300", "--fail-shard", "1",
            "--recover-at", "700"],
    }

    @pytest.mark.parametrize("golden,extra", sorted(CASES.items()))
    def test_serial_reports_byte_identical_to_pre_refactor(
            self, tmp_path, golden, extra):
        path = str(tmp_path / "report.json")
        code, _ = run(self.BASE + extra + ["--json", path])
        assert code == 0
        with open(os.path.join(self.GOLDEN_DIR, golden), "rb") as f:
            want = f.read()
        with open(path, "rb") as f:
            got = f.read()
        assert got == want

    def test_explicit_ingest_serial_flag_matches_default(self, tmp_path):
        """``--ingest serial`` spelled out == the default == the golden."""
        path = str(tmp_path / "report.json")
        code, _ = run(self.BASE + ["--ingest", "serial", "--json", path])
        assert code == 0
        with open(os.path.join(self.GOLDEN_DIR,
                               "serve_sim_sharded.json"), "rb") as f:
            want = f.read()
        with open(path, "rb") as f:
            got = f.read()
        assert got == want


class TestServeSimHybridAndIngest:
    def test_serve_sim_hybrid_topology(self):
        code, text = run(["serve-sim", "--dataset", "wikipedia",
                          "--edges", "600", "--shards", "2",
                          "--streams", "2", "--backend", "cpu-32t",
                          "--window-s", "3600", "--memory-dim", "8",
                          "--topology", "hybrid", "--hot-top-k", "8"])
        assert code == 0
        assert "2 hot shard(s) + pool of 2 replica(s)" in text
        assert "[placement hybrid]" in text
        assert text.count("shard ") >= 3    # 2 hot shards + the pool row

    def test_serve_sim_hybrid_pool_servers_flag(self):
        code, text = run(["serve-sim", "--dataset", "wikipedia",
                          "--edges", "400", "--shards", "2",
                          "--streams", "2", "--backend", "cpu-32t",
                          "--window-s", "3600", "--memory-dim", "8",
                          "--topology", "hybrid", "--pool-servers", "3"])
        assert code == 0
        assert "pool of 3 replica(s)" in text

    def test_serve_sim_hybrid_ignores_placement_with_note(self):
        code, text = run(["serve-sim", "--dataset", "wikipedia",
                          "--edges", "400", "--shards", "2",
                          "--streams", "2", "--backend", "cpu-32t",
                          "--window-s", "3600", "--memory-dim", "8",
                          "--topology", "hybrid",
                          "--placement", "replicate"])
        assert code == 0
        assert "--placement replicate is ignored in hybrid" in text

    def test_serve_sim_pipelined_ingest_tagged_and_faster(self, tmp_path):
        base = ["serve-sim", "--dataset", "wikipedia", "--edges", "400",
                "--shards", "2", "--streams", "2", "--backend", "cpu-32t",
                "--window-s", "3600", "--memory-dim", "8",
                "--deadline-ms", "2000"]
        import json
        p95 = {}
        for ingest in ("serial", "pipelined"):
            path = str(tmp_path / f"{ingest}.json")
            code, text = run(base + ["--ingest", ingest, "--json", path])
            assert code == 0
            assert ("[ingest pipelined]" in text) == (ingest == "pipelined")
            with open(path) as f:
                report = json.load(f)
            p95[ingest] = report["p95_response_s"]
            # The key only appears in pipelined reports (serial keeps the
            # pre-event-core schema byte-for-byte).
            assert ("ingest" in report) == (ingest == "pipelined")
        assert p95["pipelined"] < p95["serial"]

    def test_serve_sim_hybrid_json_determinism(self, tmp_path):
        argv = ["serve-sim", "--dataset", "wikipedia", "--edges", "400",
                "--shards", "2", "--streams", "2", "--backend", "cpu-32t",
                "--window-s", "3600", "--memory-dim", "8",
                "--topology", "hybrid", "--ingest", "pipelined"]
        paths = [str(tmp_path / "a.json"), str(tmp_path / "b.json")]
        for path in paths:
            code, _ = run(argv + ["--json", path])
            assert code == 0
        a, b = (open(p, "rb").read() for p in paths)
        assert a == b
        import json
        report = json.loads(a)
        assert report["topology"] == "hybrid"
        assert report["ingest"] == "pipelined"


class TestServeSimRebalanceOnline:
    BASE = ["serve-sim", "--dataset", "wikipedia", "--edges", "400",
            "--shards", "4", "--streams", "2", "--backend", "cpu-32t",
            "--window-s", "3600", "--memory-dim", "8", "--seed", "0"]

    def test_online_rebalance_prints_migration_summary(self):
        code, text = run(self.BASE + ["--speedup", "2000",
                                      "--rebalance-online",
                                      "--rebalance-threshold", "0.05"])
        assert code == 0
        assert "rebalance online:" in text
        assert "state rows handed off" in text

    def test_stationary_load_reports_zero_migrations(self):
        """At the default light load no shard crosses the threshold: the
        rebalancer runs but must be a no-op."""
        code, text = run(self.BASE + ["--rebalance-online"])
        assert code == 0
        assert "rebalance online: 0 migration(s)" in text

    def test_json_carries_migration_accounting(self, tmp_path):
        import json
        path = str(tmp_path / "r.json")
        code, _ = run(self.BASE + ["--speedup", "2000",
                                   "--rebalance-online",
                                   "--rebalance-threshold", "0.05",
                                   "--json", path])
        assert code == 0
        with open(path) as f:
            report = json.load(f)
        assert report["rebalance"] == "online"
        assert report["migrations"] > 0
        assert report["handoff_rows"] > 0
        assert report["migrated_vertices"] > 0

    def test_without_flag_json_has_no_rebalance_keys(self, tmp_path):
        import json
        path = str(tmp_path / "r.json")
        code, _ = run(self.BASE + ["--json", path])
        assert code == 0
        with open(path) as f:
            report = json.load(f)
        for key in ("rebalance", "migrations", "migrated_vertices",
                    "handoff_rows"):
            assert key not in report

    def test_pool_topology_ignores_flag_with_note(self):
        code, text = run(self.BASE + ["--topology", "pool",
                                      "--rebalance-online"])
        assert code == 0
        assert "--rebalance-online is ignored in pool topology" in text
        assert "rebalance online:" not in text

    def test_hybrid_topology_runs_drift_mode(self):
        code, text = run(self.BASE + ["--topology", "hybrid",
                                      "--shards", "2",
                                      "--rebalance-online",
                                      "--rebalance-window", "1.0"])
        assert code == 0
        assert "rebalance online:" in text

    def test_rebalance_json_determinism(self, tmp_path):
        argv = self.BASE + ["--speedup", "2000", "--rebalance-online",
                            "--rebalance-threshold", "0.05"]
        paths = [str(tmp_path / "a.json"), str(tmp_path / "b.json")]
        for path in paths:
            code, _ = run(argv + ["--json", path])
            assert code == 0
        a, b = (open(p, "rb").read() for p in paths)
        assert a == b


class TestServeSimAutoscale:
    BASE = ["serve-sim", "--dataset", "wikipedia", "--edges", "400",
            "--shards", "2", "--streams", "2", "--backend", "cpu-32t",
            "--window-s", "3600", "--memory-dim", "8", "--seed", "0",
            "--speedup", "2000"]

    def test_pool_scales_up_under_a_tight_slo(self, tmp_path):
        import json
        path = str(tmp_path / "r.json")
        code, text = run(self.BASE + ["--topology", "pool", "--autoscale",
                                      "--slo-p95", "1e-6",
                                      "--max-servers", "4",
                                      "--json", path])
        assert code == 0
        assert "autoscale slo-p95" in text
        with open(path) as f:
            report = json.load(f)
        s = report["scaling"]
        assert s["autoscale"] == "slo-p95"
        assert s["scale_ups"] > 0
        assert s["initial_servers"] == 2 and s["max_servers"] == 4
        assert s["final_servers"] == s["peak_servers"] == 4
        assert s["server_seconds"] > 0

    def test_pool_scales_down_under_a_slack_slo(self):
        code, text = run(self.BASE + ["--topology", "pool", "--autoscale",
                                      "--slo-p95", "1e6"])
        assert code == 0
        assert "down, fleet 2 -> 1" in text

    def test_sharded_splits_print_handoff_rows(self):
        code, text = run(self.BASE + ["--autoscale", "--slo-p95", "1e-6",
                                      "--max-servers", "4"])
        assert code == 0
        assert "autoscale slo-p95" in text
        assert "split/merge rows" in text

    def test_autoscaled_trace_replays_clean(self):
        code, text = run(self.BASE + ["--topology", "pool", "--autoscale",
                                      "--slo-p95", "1e-6",
                                      "--max-servers", "4",
                                      "--check-trace"])
        assert code == 0
        # 7 checks: the fleet-size replay joined the standard six.
        assert "trace check: clean" in text and "7 checks" in text

    def test_scaling_block_absent_without_flag(self, tmp_path):
        import json
        path = str(tmp_path / "r.json")
        code, _ = run(self.BASE + ["--json", path])
        assert code == 0
        with open(path) as f:
            assert "scaling" not in json.load(f)

    def test_autoscale_json_determinism(self, tmp_path):
        argv = self.BASE + ["--autoscale", "--slo-p95", "1e-6",
                            "--max-servers", "4"]
        paths = [str(tmp_path / "a.json"), str(tmp_path / "b.json")]
        for path in paths:
            code, _ = run(argv + ["--json", path])
            assert code == 0
        a, b = (open(p, "rb").read() for p in paths)
        assert a == b

    @pytest.mark.parametrize("extra,msg", [
        (["--autoscale"], "--slo-p95"),
        (["--slo-p95", "1.0"], "--autoscale"),
        (["--scale-window", "10"], "--autoscale"),
        (["--max-servers", "4"], "--autoscale"),
        (["--autoscale", "--slo-p95", "1.0", "--rebalance-online"],
         "rebalance"),
        (["--autoscale", "--slo-p95", "1.0", "--fail-at", "300",
          "--fail-shard", "1"], "--fail-at"),
        (["--autoscale", "--slo-p95", "1.0", "--topology", "hybrid"],
         "hybrid"),
        (["--autoscale", "--slo-p95", "1.0", "--placement", "replicate"],
         "hash"),
        (["--autoscale", "--slo-p95", "1.0", "--max-servers", "1"],
         "--max-servers"),
    ])
    def test_conflicting_flags_are_clean_errors(self, extra, msg):
        code, text = run(self.BASE + extra)
        assert code == 2
        assert "error:" in text and msg in text


class TestReportStrictJson:
    """Every canonical report round-trips *strict* JSON: no Infinity/NaN
    tokens ever reach the serialized report (the open-ended outage
    interval regression — ``(t0, inf)`` is clamped to the run makespan
    before it can leak into accounting)."""

    CASES = dict(TestServeSimGolden.CASES,
                 **{"fail_without_recover.json": [
                        "--memsync", "push", "--placement", "replicate",
                        "--speedup", "2000", "--fail-at", "300",
                        "--fail-shard", "1"],
                    "autoscale_pool.json": [
                        "--topology", "pool", "--speedup", "2000",
                        "--autoscale", "--slo-p95", "1e-6",
                        "--max-servers", "4"]})

    @pytest.mark.parametrize("name,extra", sorted(CASES.items()))
    def test_round_trips_strict_json(self, tmp_path, name, extra):
        import json

        def reject(token):
            raise AssertionError(
                f"non-finite JSON token {token!r} in {name}")

        path = str(tmp_path / name)
        code, _ = run(TestServeSimGolden.BASE + extra + ["--json", path])
        assert code == 0
        with open(path) as f:
            text = f.read()
        report = json.loads(text, parse_constant=reject)
        # And the round trip is exact: parse -> dump -> parse.
        assert json.loads(json.dumps(report), parse_constant=reject) \
            == report

    def test_open_outage_interval_is_clamped_to_makespan(self, tmp_path):
        """A failure with no recovery leaves an open outage: its report
        accounting must cover at most the run span, never infinity."""
        import json
        path = str(tmp_path / "r.json")
        code, _ = run(TestServeSimGolden.BASE + self.CASES[
            "fail_without_recover.json"] + ["--json", path])
        assert code == 0
        with open(path) as f:
            report = json.loads(f.read(), parse_constant=lambda t: 1 / 0)
        assert report["outage_windows"] > 0
        assert report["makespan_s"] < float("inf")


class TestDseTrace:
    def test_dse_prints_frontier(self):
        code, text = run(["dse", "--platform", "zcu104", "--prune", "2"])
        assert code == 0
        assert "frontier" in text and "DSP" in text

    def test_trace_prints_gantt(self):
        code, text = run(["trace", "--platform", "zcu104",
                          "--batches", "2", "--width", "60"])
        assert code == 0
        assert "|" in text
        assert "pipeline overlap" in text
