"""Unit tests for the CLI (in-process invocation, no subprocesses)."""

import os

import pytest

from repro.cli import build_parser, main


def run(argv):
    lines = []
    code = main(argv, out=lines.append)
    return code, "\n".join(str(x) for x in lines)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])


class TestInfo:
    def test_lists_datasets_and_designs(self):
        code, text = run(["info"])
        assert code == 0
        assert "wikipedia" in text and "gdelt" in text
        assert "u200" in text and "zcu104" in text


class TestTrainEvalInfer:
    @pytest.fixture(scope="class")
    def checkpoint(self, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("ckpt") / "model.npz")
        code, text = run([
            "train", "--dataset", "wikipedia", "--edges", "600",
            "--epochs", "1", "--batch-size", "100", "--memory-dim", "12",
            "--neighbors", "4", "--simplified", "--lut", "--prune", "2",
            "--out", path])
        assert code == 0
        assert "saved checkpoint" in text
        return path

    def test_eval(self, checkpoint):
        code, text = run(["eval", "--model", checkpoint,
                          "--dataset", "wikipedia", "--edges", "600"])
        assert code == 0
        assert "AP" in text

    def test_infer_software(self, checkpoint):
        code, text = run(["infer", "--model", checkpoint,
                          "--dataset", "wikipedia", "--edges", "600",
                          "--backend", "software"])
        assert code == 0
        assert "kE/s" in text and "measured" in text

    def test_infer_simulated(self, checkpoint):
        code, text = run(["infer", "--model", checkpoint,
                          "--dataset", "wikipedia", "--edges", "600",
                          "--backend", "zcu104"])
        assert code == 0
        assert "simulated (zcu104)" in text

    def test_distillation_path(self, checkpoint, tmp_path):
        student = str(tmp_path / "student.npz")
        code, text = run([
            "train", "--dataset", "wikipedia", "--edges", "600",
            "--epochs", "1", "--batch-size", "100", "--memory-dim", "12",
            "--neighbors", "4", "--simplified",
            "--teacher", checkpoint, "--out", student])
        assert code == 0
        assert "distilled" in text
        assert os.path.exists(student)


class TestDseTrace:
    def test_dse_prints_frontier(self):
        code, text = run(["dse", "--platform", "zcu104", "--prune", "2"])
        assert code == 0
        assert "frontier" in text and "DSP" in text

    def test_trace_prints_gantt(self):
        code, text = run(["trace", "--platform", "zcu104",
                          "--batches", "2", "--width", "60"])
        assert code == 0
        assert "|" in text
        assert "pipeline overlap" in text
