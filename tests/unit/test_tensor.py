"""Unit tests for the autograd Tensor: forward values and exact gradients."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, no_grad
from repro.autograd.tensor import _unbroadcast


class TestForwardValues:
    def test_add_matches_numpy(self):
        a, b = Tensor([1.0, 2.0]), Tensor([3.0, 4.0])
        assert np.allclose((a + b).data, [4.0, 6.0])

    def test_scalar_radd(self):
        a = Tensor([1.0, 2.0])
        assert np.allclose((1.0 + a).data, [2.0, 3.0])

    def test_sub_and_rsub(self):
        a = Tensor([5.0, 1.0])
        assert np.allclose((a - 2.0).data, [3.0, -1.0])
        assert np.allclose((2.0 - a).data, [-3.0, 1.0])

    def test_mul_broadcast(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor([1.0, 2.0, 3.0])
        assert np.allclose((a * b).data, [[1, 2, 3], [1, 2, 3]])

    def test_div(self):
        a = Tensor([6.0, 9.0])
        assert np.allclose((a / 3.0).data, [2.0, 3.0])

    def test_pow(self):
        assert np.allclose((Tensor([2.0, 3.0]) ** 2).data, [4.0, 9.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])

    def test_matmul_2d(self):
        a = Tensor(np.arange(6.0).reshape(2, 3))
        b = Tensor(np.arange(12.0).reshape(3, 4))
        assert np.allclose((a @ b).data, a.data @ b.data)

    def test_matmul_batched(self):
        rng = np.random.default_rng(0)
        a = Tensor(rng.normal(size=(5, 2, 3)))
        b = Tensor(rng.normal(size=(3, 4)))
        assert np.allclose((a @ b).data, a.data @ b.data)

    def test_exp_log_roundtrip(self):
        x = Tensor([0.5, 1.5])
        assert np.allclose(x.exp().log().data, x.data)

    def test_sigmoid_extremes_stable(self):
        x = Tensor([-1000.0, 0.0, 1000.0])
        s = x.sigmoid().data
        assert np.all(np.isfinite(s))
        assert np.allclose(s, [0.0, 0.5, 1.0])

    def test_relu(self):
        assert np.allclose(Tensor([-1.0, 0.0, 2.0]).relu().data, [0, 0, 2])

    def test_cos(self):
        x = Tensor([0.0, np.pi])
        assert np.allclose(x.cos().data, [1.0, -1.0])

    def test_sum_axis_keepdims(self):
        x = Tensor(np.ones((2, 3)))
        assert x.sum(axis=1, keepdims=True).shape == (2, 1)
        assert x.sum().item() == 6.0

    def test_mean_axis(self):
        x = Tensor(np.arange(6.0).reshape(2, 3))
        assert np.allclose(x.mean(axis=0).data, [1.5, 2.5, 3.5])

    def test_max_axis(self):
        x = Tensor([[1.0, 5.0], [7.0, 2.0]])
        assert np.allclose(x.max(axis=1).data, [5.0, 7.0])

    def test_reshape_transpose(self):
        x = Tensor(np.arange(6.0))
        assert x.reshape(2, 3).shape == (2, 3)
        assert x.reshape((3, 2)).T.shape == (2, 3)

    def test_getitem_fancy(self):
        x = Tensor(np.arange(10.0))
        idx = np.array([1, 1, 3])
        assert np.allclose(x[idx].data, [1.0, 1.0, 3.0])

    def test_concat_stack(self):
        a, b = Tensor(np.ones((2, 2))), Tensor(np.zeros((2, 3)))
        assert Tensor.concat([a, b], axis=1).shape == (2, 5)
        assert Tensor.stack([a, a], axis=0).shape == (2, 2, 2)

    def test_where(self):
        out = Tensor.where(np.array([True, False]), Tensor([1.0, 1.0]),
                           Tensor([2.0, 2.0]))
        assert np.allclose(out.data, [1.0, 2.0])


class TestGradients:
    """Every primitive op's VJP validated against finite differences."""

    def _p(self, shape, seed=0):
        rng = np.random.default_rng(seed)
        return Tensor(rng.normal(size=shape), requires_grad=True)

    def test_add_mul_chain(self):
        a, b = self._p((3, 2)), self._p((3, 2), seed=1)
        check_gradients(lambda x, y: ((x + y) * x).sum(), [a, b])

    def test_sub_div(self):
        a, b = self._p((4,)), self._p((4,), seed=1)
        b.data += 3.0  # keep the denominator away from zero
        check_gradients(lambda x, y: (x / y - y).sum(), [a, b])

    def test_matmul_grads(self):
        a, b = self._p((3, 4)), self._p((4, 2), seed=1)
        check_gradients(lambda x, y: (x @ y).sum(), [a, b])

    def test_matmul_vector_cases(self):
        a, b = self._p((4,)), self._p((4,), seed=1)
        check_gradients(lambda x, y: x @ y, [a, b])
        m = self._p((4, 3), seed=2)
        check_gradients(lambda x, w: (x @ w).sum(), [a, m])
        check_gradients(lambda w, x: (w @ x).sum(), [m.T if False else self._p((3, 4), seed=3), a])

    def test_broadcast_grads(self):
        a, b = self._p((2, 3)), self._p((3,), seed=1)
        check_gradients(lambda x, y: (x * y + y).sum(), [a, b])

    def test_elementwise_nonlinearities(self):
        x = self._p((5,))
        check_gradients(lambda t: t.tanh().sum(), [x])
        check_gradients(lambda t: t.sigmoid().sum(), [x])
        check_gradients(lambda t: t.exp().sum(), [x])
        check_gradients(lambda t: t.cos().sum(), [x])
        y = self._p((5,), seed=2)
        y.data = np.abs(y.data) + 0.5
        check_gradients(lambda t: t.log().sum(), [y])

    def test_reductions(self):
        x = self._p((3, 4))
        check_gradients(lambda t: t.sum(axis=0).sum(), [x])
        check_gradients(lambda t: t.mean(axis=1).sum(), [x])
        check_gradients(lambda t: t.max(axis=1).sum(), [x])

    def test_getitem_scatter_add(self):
        # Repeated indices must accumulate gradient, not overwrite.
        x = Tensor(np.zeros(4), requires_grad=True)
        idx = np.array([1, 1, 2])
        out = x[idx].sum()
        out.backward()
        assert np.allclose(x.grad, [0.0, 2.0, 1.0, 0.0])

    def test_concat_grads(self):
        a, b = self._p((2, 2)), self._p((2, 3), seed=1)
        check_gradients(
            lambda x, y: (Tensor.concat([x, y], axis=1) ** 2).sum(), [a, b])

    def test_where_grads(self):
        a, b = self._p((4,)), self._p((4,), seed=1)
        cond = np.array([True, False, True, False])
        check_gradients(
            lambda x, y: (Tensor.where(cond, x, y) * 2.0).sum(), [a, b])

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(np.ones(4), requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 1.0
        y.sum().backward()
        assert np.allclose(x.grad, np.ones(4))


class TestGraphMechanics:
    def test_no_grad_blocks_recording(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad
        assert y._backward is None

    def test_grad_accumulates_across_backwards(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2.0).sum().backward()
        (x * 2.0).sum().backward()
        assert np.allclose(x.grad, [4.0, 4.0, 4.0])

    def test_detach_breaks_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x * 2.0).detach() * 3.0
        y.sum().backward()
        assert x.grad is None

    def test_diamond_dependency(self):
        # f = (x*2) + (x*3): gradient must be 5, not 2 or 3.
        x = Tensor(np.ones(2), requires_grad=True)
        (x * 2.0 + x * 3.0).sum().backward()
        assert np.allclose(x.grad, [5.0, 5.0])

    def test_unbroadcast_shapes(self):
        g = np.ones((4, 3, 2))
        assert _unbroadcast(g, (3, 2)).shape == (3, 2)
        assert _unbroadcast(g, (1, 2)).shape == (1, 2)
        assert np.allclose(_unbroadcast(g, (1, 2)), [[12.0, 12.0]])
