"""Unit tests for streaming engines and the real-time window replay."""

import numpy as np
import pytest

from repro.datasets import wikipedia_like
from repro.hw import FPGAAccelerator, ZCU104_DESIGN
from repro.models import ModelConfig, TGNN
from repro.perf import CPU_32T
from repro.pipeline import (FIFTEEN_MINUTES, ModeledGPPBackend,
                            SimulatedFPGABackend, SoftwareBackend,
                            realtime_replay, run_engine, summarize)
from repro.profiling import count_ops

CFG = ModelConfig(memory_dim=8, time_dim=6, embed_dim=8, edge_dim=172,
                  num_neighbors=4, simplified_attention=True,
                  lut_time_encoder=True, lut_bins=8, pruning_budget=2)


def setup():
    g = wikipedia_like(num_edges=500, num_users=70, num_items=18)
    model = TGNN(CFG, rng=np.random.default_rng(0))
    model.calibrate(g)
    return g, model


class TestSoftwareBackend:
    def test_measured_report(self):
        g, model = setup()
        be = SoftwareBackend(model, g)
        rep = run_engine(be, g, batch_size=100, end=400)
        assert rep.n_edges == 400
        assert rep.total_latency_s > 0
        assert rep.throughput_eps > 0
        assert set(rep.stage_time_s) == {"sample", "memory", "gnn", "update"}

    def test_state_persists_across_batches(self):
        g, model = setup()
        be = SoftwareBackend(model, g)
        run_engine(be, g, batch_size=100, end=200)
        assert be.rt.state.has_mail(g.slice(0, 200).nodes).all()


class TestModeledBackend:
    def test_latency_constant_per_batch_size(self):
        g, model = setup()
        counts = count_ops(CFG)
        be = ModeledGPPBackend(CPU_32T, counts, model, g, functional=False)
        l1 = be.process_batch(g.slice(0, 100))
        l2 = be.process_batch(g.slice(100, 200))
        assert l1 == l2
        assert l1 == pytest.approx(CPU_32T.latency_s(counts, 100))

    def test_functional_state_advances(self):
        g, model = setup()
        be = ModeledGPPBackend(CPU_32T, count_ops(CFG), model, g)
        be.process_batch(g.slice(0, 100))
        assert be.rt.state.has_mail(g.slice(0, 100).nodes).all()


class TestRealtimeReplay:
    def test_windows_cover_range(self):
        g, model = setup()
        be = SoftwareBackend(model, g)
        pts = realtime_replay(be, g, window_s=6 * 3600.0, start=100, end=500)
        assert sum(p.n_edges for p in pts) == 400
        starts = [p.t_start_s for p in pts]
        assert starts == sorted(starts)

    def test_fpga_backend_replay(self):
        g, model = setup()
        acc = FPGAAccelerator(model, ZCU104_DESIGN)
        be = SimulatedFPGABackend(acc, g)
        pts = realtime_replay(be, g, window_s=12 * 3600.0, start=300, end=500)
        assert all(p.latency_s > 0 for p in pts)

    def test_summarize(self):
        g, model = setup()
        be = SoftwareBackend(model, g)
        pts = realtime_replay(be, g, window_s=6 * 3600.0, end=300)
        s = summarize(pts)
        assert s["windows"] == len(pts)
        assert s["mean_s"] <= s["p95_s"] <= s["max_s"]
        assert summarize([])["windows"] == 0

    def test_fifteen_minutes_constant(self):
        assert FIFTEEN_MINUTES == 900.0
