"""Unit tests for synthetic stream generators and Δt statistics."""

import numpy as np
import pytest

from repro.datasets import (StreamSpec, delta_t_histogram,
                            encoder_input_deltas, equal_frequency_edges,
                            gdelt_like, generate_stream, load, reddit_like,
                            tail_heaviness, wikipedia_like)
from repro.graph import TemporalGraph


class TestGenerators:
    def test_wikipedia_like_shape(self):
        g = wikipedia_like(num_edges=500, num_users=100, num_items=20)
        assert g.num_edges == 500
        assert g.num_nodes == 120
        assert g.edge_dim == 172 and g.node_dim == 0

    def test_reddit_like_shape(self):
        g = reddit_like(num_edges=300, num_users=50, num_items=10)
        assert g.edge_dim == 172

    def test_gdelt_like_node_features(self):
        g = gdelt_like(num_edges=300, num_users=50, num_items=50)
        assert g.edge_dim == 0 and g.node_dim == 200
        assert g.node_feat.shape == (100, 200)

    def test_bipartite_structure(self):
        g = wikipedia_like(num_edges=400, num_users=80, num_items=20)
        assert g.src.max() < 80           # users on the left
        assert g.dst.min() >= 80          # items on the right

    def test_chronological(self):
        g = reddit_like(num_edges=400, num_users=60, num_items=12)
        assert np.all(np.diff(g.t) >= 0)

    def test_deterministic_by_seed(self):
        a = wikipedia_like(num_edges=200, seed=7, num_users=40, num_items=10)
        b = wikipedia_like(num_edges=200, seed=7, num_users=40, num_items=10)
        assert np.array_equal(a.dst, b.dst)
        assert np.allclose(a.edge_feat, b.edge_feat)
        c = wikipedia_like(num_edges=200, seed=8, num_users=40, num_items=10)
        assert not np.array_equal(a.dst, c.dst)

    def test_duration_matches_spec(self):
        spec = StreamSpec(name="x", num_users=30, num_items=10,
                          num_edges=200, edge_dim=4, node_dim=0,
                          duration_days=10.0)
        g = generate_stream(spec)
        assert g.t[-1] <= 10.0 * 86_400.0 + 1e-6

    def test_repeat_behaviour_creates_repeat_edges(self):
        g = reddit_like(num_edges=1000, num_users=100, num_items=20)
        pairs = set(zip(g.src.tolist(), g.dst.tolist()))
        assert len(pairs) < g.num_edges  # repeats exist

    def test_registry(self):
        g = load("wikipedia", num_edges=100, num_users=30, num_items=10)
        assert isinstance(g, TemporalGraph)
        with pytest.raises(KeyError):
            load("imagenet")


class TestDeltaStats:
    def test_encoder_deltas_count(self):
        g = wikipedia_like(num_edges=200, num_users=40, num_items=10)
        d = encoder_input_deltas(g)
        assert len(d) == 2 * g.num_edges
        assert np.all(d >= 0)

    def test_first_appearance_delta_zero(self):
        g = TemporalGraph([0, 0], [1, 2], [5.0, 7.0])
        d = encoder_input_deltas(g)
        # src=0 first appears -> 0; dst=1 first -> 0; then src=0 gap=2, dst=2 -> 0.
        assert np.allclose(np.sort(d), [0.0, 0.0, 0.0, 2.0])

    def test_histogram_total(self):
        g = wikipedia_like(num_edges=300, num_users=50, num_items=10)
        d = encoder_input_deltas(g)
        edges, counts = delta_t_histogram(d, n_bins=20)
        assert counts.sum() == len(d)
        assert len(edges) == 21

    def test_power_law_shape(self):
        """Fig. 1 reproduction target: mass concentrated near Δt = 0."""
        g = wikipedia_like(num_edges=3000, num_users=300, num_items=50)
        d = encoder_input_deltas(g)
        _, counts = delta_t_histogram(d, n_bins=30)
        assert counts[0] > counts[5] > counts[-1]
        assert counts[0] > 0.3 * counts.sum()

    def test_tail_heaviness_flags_bursty(self):
        g = reddit_like(num_edges=3000, num_users=300, num_items=40)
        d = encoder_input_deltas(g)
        assert tail_heaviness(d) < 0.6  # heavier than exponential


class TestEqualFrequencyEdges:
    def test_partition_properties(self):
        rng = np.random.default_rng(0)
        d = rng.pareto(1.5, size=5000)
        edges = equal_frequency_edges(d, n_bins=16)
        assert len(edges) == 17
        assert edges[0] == 0.0 and edges[-1] == np.inf
        assert np.all(np.diff(edges) >= 0)

    def test_mass_roughly_equal(self):
        rng = np.random.default_rng(1)
        d = rng.exponential(1.0, size=8000)
        edges = equal_frequency_edges(d, n_bins=8)
        idx = np.clip(np.searchsorted(edges, d, side="right") - 1, 0, 7)
        counts = np.bincount(idx, minlength=8)
        assert counts.min() > 0.5 * len(d) / 8
        assert counts.max() < 2.0 * len(d) / 8

    def test_validation(self):
        with pytest.raises(ValueError):
            equal_frequency_edges(np.array([1.0]), n_bins=0)
        with pytest.raises(ValueError):
            equal_frequency_edges(np.array([]), n_bins=4)
