"""Setup shim for legacy editable installs (offline environments without
the `wheel` package cannot build PEP 660 editable wheels)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=("Model-architecture co-design for high-performance temporal "
                 "GNN inference (IPDPS 2022 reproduction)"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    entry_points={
        "console_scripts": [
            # Determinism & invariant linter (src/repro/analysis/);
            # stdlib-only, also runnable as `python -m repro.analysis`.
            "repro-lint=repro.analysis.cli:main",
        ],
    },
)
